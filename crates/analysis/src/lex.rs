//! A lightweight, lossless Rust *masking* lexer.
//!
//! The passes in this crate match textual patterns (`unsafe`, `.lock()`,
//! `Ordering::`, …), and the classic failure mode of grep-style lint is a
//! hit inside a string literal or a comment.  Instead of a full parser,
//! [`mask`] produces three same-length views of a source file:
//!
//! * **code** — the program text with every comment body and every
//!   string/char literal *content* replaced by spaces.  Delimiters (the
//!   quotes) and all newlines survive, so byte offsets and line numbers in
//!   the mask are identical to the original file.  Pattern matches against
//!   this view can never land inside a literal or a comment.
//! * **comments** — the dual: only comment text (including the `//` / `/*`
//!   markers) survives, everything else is blanked.  Directive lookups
//!   (`SAFETY:`, `ij-analysis: allow(panic)`) run against this view, so a
//!   directive inside a string does not count.
//! * **strings** — the extracted string-literal contents with the byte
//!   offset where each content begins, for passes that *do* care about
//!   literals (failpoint site names).
//!
//! The lexer understands nested block comments, doc comments, `"…"` with
//! escapes, raw strings `r"…"` / `r#"…"#` (any number of `#`s), byte and
//! raw-byte strings, char literals (including escapes), and tells
//! lifetimes/labels (`'a`, `'outer:`) apart from char literals with the
//! standard two-byte lookahead heuristic.

/// One extracted string literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset (into the original text) of the first content byte,
    /// i.e. just past the opening quote.
    pub content_start: usize,
    /// The literal's raw content (escape sequences are *not* processed —
    /// the passes only compare exact site names, which never need them).
    pub content: String,
}

/// The three masked views of one source file.  All masks have exactly the
/// same byte length as the input, with every `\n` preserved.
#[derive(Debug)]
pub struct Masked {
    pub code: String,
    pub comments: String,
    pub strings: Vec<StrLit>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Masks `text`.  Invalid or exotic syntax degrades gracefully: an
/// unterminated literal or comment simply blanks through to end-of-file,
/// which is conservative for every pass (nothing is invented, only hidden).
pub fn mask(text: &str) -> Masked {
    let bytes = text.as_bytes();
    let n = bytes.len();
    // Pre-fill both masks with spaces, newlines already in place.
    let mut code = vec![b' '; n];
    let mut comments = vec![b' '; n];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
        }
    }
    let mut strings = Vec::new();

    let keep_code = |code: &mut [u8], i: usize| code[i] = bytes[i];

    let mut i = 0usize;
    while i < n {
        let b = bytes[i];
        let next = |k: usize| bytes.get(i + k).copied().unwrap_or(0);
        match b {
            b'/' if next(1) == b'/' => {
                // Line comment (incl. `///` and `//!`).
                while i < n && bytes[i] != b'\n' {
                    comments[i] = bytes[i];
                    i += 1;
                }
            }
            b'/' if next(1) == b'*' => {
                // Block comment, nested.
                let mut depth = 0usize;
                while i < n {
                    if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        comments[i] = bytes[i];
                        comments[i + 1] = bytes[i + 1];
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        comments[i] = bytes[i];
                        comments[i + 1] = bytes[i + 1];
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            comments[i] = bytes[i];
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = lex_plain_string(bytes, i, &mut code, &mut strings);
            }
            b'r' | b'b' if i == 0 || !is_ident(bytes[i - 1]) => {
                // Possible raw string (`r"`, `r#"`), byte string (`b"`),
                // raw byte string (`br"`, `br#"`) or byte char (`b'x'`).
                let (prefix_len, raw) = match (b, next(1), next(2)) {
                    (b'r', b'"', _) | (b'r', b'#', _) => (1, true),
                    (b'b', b'r', b'"') | (b'b', b'r', b'#') => (2, true),
                    (b'b', b'"', _) => (1, false),
                    (b'b', b'\'', _) => {
                        keep_code(&mut code, i);
                        code[i + 1] = b'\''; // opening quote
                        i = lex_char(bytes, i + 2, &mut code);
                        continue;
                    }
                    _ => {
                        keep_code(&mut code, i);
                        i += 1;
                        continue;
                    }
                };
                if raw {
                    // Count `#`s after the prefix; require a `"` next, else
                    // this is a raw identifier like `r#fn` — plain code.
                    let mut j = i + prefix_len;
                    while j < n && bytes[j] == b'#' {
                        j += 1;
                    }
                    if j < n && bytes[j] == b'"' {
                        let hashes = j - (i + prefix_len);
                        for k in i..=j {
                            keep_code(&mut code, k);
                        }
                        i = lex_raw_string(bytes, j + 1, hashes, &mut code, &mut strings);
                    } else {
                        keep_code(&mut code, i);
                        i += 1;
                    }
                } else {
                    keep_code(&mut code, i); // the `b`
                    i = lex_plain_string(bytes, i + 1, &mut code, &mut strings);
                }
            }
            b'\'' => {
                // Char literal vs lifetime/label: `'\…'` is always a char;
                // otherwise it is a char only if one character later comes
                // a closing `'` (so `'a'` yes, `'a`, `'static`, `'out:` no).
                let is_char = if next(1) == b'\\' {
                    true
                } else {
                    // One UTF-8 character = 1..=4 bytes.
                    let ch_len = text[i + 1..].chars().next().map_or(1, char::len_utf8);
                    next(1 + ch_len) == b'\''
                };
                if is_char {
                    keep_code(&mut code, i);
                    i = lex_char(bytes, i + 1, &mut code);
                } else {
                    keep_code(&mut code, i);
                    i += 1;
                }
            }
            _ => {
                keep_code(&mut code, i);
                i += 1;
            }
        }
    }

    // Both masks only ever contain original-text bytes or ASCII spaces, so
    // multi-byte characters are either kept whole or blanked whole-by-byte.
    Masked {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments: String::from_utf8_lossy(&comments).into_owned(),
        strings,
    }
}

/// Lexes a `"…"` body starting at the opening quote index; returns the
/// index just past the closing quote.  Quotes stay in `code`.
fn lex_plain_string(bytes: &[u8], open: usize, code: &mut [u8], out: &mut Vec<StrLit>) -> usize {
    let n = bytes.len();
    code[open] = b'"';
    let start = open + 1;
    let mut i = start;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                code[i] = b'"';
                out.push(StrLit {
                    content_start: start,
                    content: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                });
                return i + 1;
            }
            _ => i += 1,
        }
    }
    // Unterminated: swallow to EOF.
    out.push(StrLit {
        content_start: start,
        content: String::from_utf8_lossy(&bytes[start..n]).into_owned(),
    });
    n
}

/// Lexes a raw string body (cursor just past the opening quote) terminated
/// by `"` + `hashes` × `#`; returns the index past the full terminator.
fn lex_raw_string(
    bytes: &[u8],
    start: usize,
    hashes: usize,
    code: &mut [u8],
    out: &mut Vec<StrLit>,
) -> usize {
    let n = bytes.len();
    let mut i = start;
    while i < n {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            let end = (i + 1 + hashes).min(n);
            code[i..end].copy_from_slice(&bytes[i..end]);
            out.push(StrLit {
                content_start: start,
                content: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
            });
            return i + 1 + hashes;
        }
        i += 1;
    }
    out.push(StrLit {
        content_start: start,
        content: String::from_utf8_lossy(&bytes[start..n]).into_owned(),
    });
    n
}

/// Lexes a char-literal body (cursor just past the opening `'`); returns
/// the index past the closing `'`.
fn lex_char(bytes: &[u8], start: usize, code: &mut [u8]) -> usize {
    let n = bytes.len();
    let mut i = start;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                code[i] = b'\'';
                return i + 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// Byte ranges (into the masked/original text) of `#[cfg(…test…)] mod …`
/// bodies — regions the hot-path panic lint skips.  Detection runs on the
/// **code mask**, so `test` inside a feature-name string does not trigger,
/// while `#[cfg(test)]` and `#[cfg(all(test, feature = "x"))]` both do.
pub fn test_mod_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let n = bytes.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = code[i..].find("#[cfg(") {
        let attr_open = i + rel + "#[cfg".len(); // index of the `(`
        let Some(attr_close) = matching(bytes, attr_open, b'(', b')') else {
            break;
        };
        i = attr_close + 1;
        let inner = &code[attr_open + 1..attr_close];
        if !has_word(inner, "test") {
            continue;
        }
        // Skip the attribute's trailing `]`, whitespace, and any further
        // attributes, then require a `mod` item with an inline body.
        let mut j = attr_close + 1;
        loop {
            while j < n && (bytes[j] == b']' || bytes[j].is_ascii_whitespace()) {
                j += 1;
            }
            if j < n && bytes[j] == b'#' {
                let Some(close) = matching(bytes, j + 1, b'[', b']') else {
                    return out;
                };
                j = close + 1;
            } else {
                break;
            }
        }
        let rest = &code[j..];
        if !(rest.starts_with("mod") && rest[3..].starts_with(|c: char| c.is_whitespace())) {
            if rest.starts_with("pub") {
                // `pub mod` — rare for test modules but harmless to honour.
                let k = j + 3;
                if !code[k..].trim_start().starts_with("mod ") {
                    continue;
                }
            } else {
                continue;
            }
        }
        let Some(body_rel) = code[j..].find('{') else {
            continue; // out-of-line `mod x;`
        };
        let body_open = j + body_rel;
        let body_close = matching(bytes, body_open, b'{', b'}').unwrap_or(n.saturating_sub(1));
        out.push((body_open, body_close + 1));
        i = body_close + 1;
    }
    out
}

/// Index of the delimiter matching `open_at` (which must hold `open`).
fn matching(bytes: &[u8], open_at: usize, open: u8, close: u8) -> Option<usize> {
    debug_assert_eq!(bytes[open_at], open);
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open_at) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether `needle` occurs in `hay` as a whole word (identifier boundaries).
pub fn has_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle, 0).is_some()
}

/// First whole-word occurrence of `needle` in `hay` at or after `from`.
pub fn find_word(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut i = from;
    while let Some(rel) = hay[i..].find(needle) {
        let at = i + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        i = at + 1;
    }
    None
}

/// 1-indexed line number of byte `offset` (clamped to the last line).
pub fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(k) => k + 1,
        Err(k) => k, // first start > offset, so offset is on line k
    }
}

/// Byte offsets at which each line begins (line 1 starts at 0).
pub fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_mask() {
        let src = r##"let a = "unsafe { }"; // unsafe here too
/* unsafe */ let b = r#"also "unsafe""#;
let c = 'x'; let d: &'static str = b"unsafe";"##;
        let m = mask(src);
        assert_eq!(m.code.len(), src.len());
        assert!(!has_word(&m.code, "unsafe"));
        assert!(has_word(&m.code, "let"));
        // Both comments made it into the comment mask.
        assert!(m.comments.contains("// unsafe here too"));
        assert!(m.comments.contains("/* unsafe */"));
        // All three literals extracted verbatim.
        let contents: Vec<&str> = m.strings.iter().map(|s| s.content.as_str()).collect();
        assert_eq!(contents, ["unsafe { }", r#"also "unsafe""#, "unsafe"]);
    }

    #[test]
    fn lifetimes_and_labels_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } } let c = '\\'';";
        let m = mask(src);
        assert!(has_word(&m.code, "loop"));
        assert!(has_word(&m.code, "break"));
        // The escaped-quote char literal's content is blanked.
        assert!(!m.code.contains("\\'"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* a /* b */ c */ unsafe {}";
        let m = mask(src);
        assert!(has_word(&m.code, "unsafe"));
        assert!(m.comments.contains("c */"));
    }

    #[test]
    fn test_mod_regions_cover_cfg_test_bodies() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(all(test, feature = \"failpoints\"))]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let m = mask(src);
        let regions = test_mod_regions(&m.code);
        assert_eq!(regions.len(), 1);
        let (a, b) = regions[0];
        assert!(src[a..b].contains("y.unwrap"));
        assert!(!src[a..b].contains("hot"));
    }

    #[test]
    fn byte_char_quote_does_not_open_a_string() {
        // Regression: `b'"'` once fed its opening quote back into the
        // char lexer, which "closed" instantly and let the `"` open a
        // phantom string that swallowed the rest of the file.
        let src = "let q = b'\"'; unsafe { hot() } let s = \"unsafe\";";
        let m = mask(src);
        assert!(has_word(&m.code, "unsafe"));
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].content, "unsafe");
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#fn = 1; let s = r\"x\";";
        let m = mask(src);
        assert!(has_word(&m.code, "r#fn"));
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].content, "x");
    }
}
