//! `ij-analysis` — the workspace's in-repo static-analysis suite.
//!
//! The engine's riskiest surfaces (poison-recovering locks, AVX2 intrinsic
//! kernels, the failpoint registry, atomic statistics) are sound because of
//! invariants that no compiler checks: every `unsafe` carries a SAFETY
//! contract, locks are only ever taken through the `ij_relation::sync`
//! recover helpers, every atomic `Ordering` choice is justified in a
//! ledger, hot loops never panic without an explicit waiver, and failpoint
//! site names match the declared registry.  This crate machine-checks all
//! five as independent, individually toggleable passes over a
//! comment/string-aware token mask of the sources (see [`lex`]).
//!
//! Run `cargo run -p ij-analysis -- check` from anywhere in the workspace;
//! `-- self-test` proves each pass fires on the seeded violation fixtures
//! under `crates/analysis/fixtures/`; `-- inventory` prints fresh ledger
//! stanzas for `UNSAFETY.md` / `ATOMICS.md` after an intentional change.
//!
//! Std-only by policy: the scanner must build before — and independently
//! of — everything it checks.

pub mod lex;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The five passes.  Each is independent: `--only` / `--skip` select any
/// subset, and a pass never consumes another pass's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PassId {
    UnsafeAudit,
    LockDiscipline,
    AtomicLedger,
    HotPathPanic,
    FailpointCoherence,
}

impl PassId {
    pub const ALL: [PassId; 5] = [
        PassId::UnsafeAudit,
        PassId::LockDiscipline,
        PassId::AtomicLedger,
        PassId::HotPathPanic,
        PassId::FailpointCoherence,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PassId::UnsafeAudit => "unsafe-audit",
            PassId::LockDiscipline => "lock-discipline",
            PassId::AtomicLedger => "atomic-ledger",
            PassId::HotPathPanic => "hot-path-panic",
            PassId::FailpointCoherence => "failpoint-coherence",
        }
    }

    pub fn parse(s: &str) -> Option<PassId> {
        PassId::ALL.into_iter().find(|p| p.name() == s)
    }

    pub fn describe(self) -> &'static str {
        match self {
            PassId::UnsafeAudit => {
                "every `unsafe` needs a nearby `// SAFETY:` comment and the \
                 per-file inventory must match UNSAFETY.md"
            }
            PassId::LockDiscipline => {
                "`.lock()/.read()/.write()` + `.unwrap()/.expect()` is forbidden \
                 outside ij_relation::sync — use the *_recover helpers"
            }
            PassId::AtomicLedger => {
                "every atomic `Ordering::` use site must appear, with a \
                 rationale and an exact count, in ATOMICS.md"
            }
            PassId::HotPathPanic => {
                "panic!/unwrap/expect/todo! in kernel and generic-join files \
                 need `// ij-analysis: allow(panic) — <reason>`"
            }
            PassId::FailpointCoherence => {
                "string site names at faults::point/configure call sites must \
                 be declared in ij_relation::faults::sites"
            }
        }
    }
}

impl fmt::Display for PassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation: pass, file (root-relative, forward slashes), 1-based
/// line, and a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub pass: PassId,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// What to scan and which repo-specific knobs apply.  [`Config::workspace`]
/// is the shipped tree's configuration; [`Config::fixtures`] points every
/// knob at `crates/analysis/fixtures/` for the self-test.
#[derive(Debug, Clone)]
pub struct Config {
    /// Scan root; `.rs` files under it are analysed.
    pub root: PathBuf,
    /// Root-relative path prefixes to skip entirely.
    pub skip_prefixes: Vec<String>,
    /// Root-relative path of the unsafe-inventory ledger.
    pub unsafety_ledger: String,
    /// Root-relative path of the atomic-ordering ledger.
    pub atomics_ledger: String,
    /// Root-relative paths subject to the hot-path panic lint.
    pub hot_files: Vec<String>,
    /// Root-relative path of the file declaring `mod sites { … }`.
    pub sites_decl: String,
    /// Root-relative paths exempt from the lock-discipline pass.
    pub lock_exempt: Vec<String>,
}

impl Config {
    /// The shipped tree's configuration, rooted at the workspace root.
    pub fn workspace(root: PathBuf) -> Config {
        Config {
            root,
            skip_prefixes: vec![
                "target".into(),
                "vendor".into(),
                ".git".into(),
                // The seeded-violation fixtures are *supposed* to fail.
                "crates/analysis/fixtures".into(),
            ],
            unsafety_ledger: "UNSAFETY.md".into(),
            atomics_ledger: "ATOMICS.md".into(),
            hot_files: vec![
                "crates/relation/src/kernels.rs".into(),
                "crates/ejoin/src/generic.rs".into(),
                "crates/ejoin/src/flat.rs".into(),
            ],
            sites_decl: "crates/relation/src/faults.rs".into(),
            lock_exempt: vec!["crates/relation/src/sync.rs".into()],
        }
    }

    /// Configuration for the seeded-violation fixture tree.
    pub fn fixtures(fixtures_root: PathBuf) -> Config {
        Config {
            root: fixtures_root,
            skip_prefixes: vec![],
            unsafety_ledger: "UNSAFETY.md".into(),
            atomics_ledger: "ATOMICS.md".into(),
            hot_files: vec!["hot_path_panic.rs".into()],
            sites_decl: "sites_decl.rs".into(),
            lock_exempt: vec![],
        }
    }
}

/// One lexed source file, ready for every pass.
pub struct SourceFile {
    /// Root-relative path with forward slashes.
    pub rel: String,
    pub text: String,
    pub masked: lex::Masked,
    /// Byte ranges of `#[cfg(…test…)] mod` bodies.
    pub test_regions: Vec<(usize, usize)>,
    pub line_starts: Vec<usize>,
}

impl SourceFile {
    pub fn parse(rel: String, text: String) -> SourceFile {
        let masked = lex::mask(&text);
        let test_regions = lex::test_mod_regions(&masked.code);
        let line_starts = lex::line_starts(&text);
        SourceFile {
            rel,
            text,
            masked,
            test_regions,
            line_starts,
        }
    }

    fn line_of(&self, offset: usize) -> usize {
        lex::line_of(&self.line_starts, offset)
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= offset && offset < b)
    }

    /// The comment-mask text of 1-based line `line` (empty if out of range).
    fn comment_line(&self, line: usize) -> &str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.text.len());
        &self.masked.comments[start..end]
    }

    /// Whether any comment within `[line - back, line]` contains `needle`.
    fn comment_near(&self, line: usize, back: usize, needle: &str) -> bool {
        (line.saturating_sub(back)..=line).any(|l| self.comment_line(l).contains(needle))
    }
}

/// Recursively loads and lexes every `.rs` file under the config root,
/// honouring `skip_prefixes`.  Paths are sorted for deterministic output.
pub fn load_sources(config: &Config) -> std::io::Result<Vec<SourceFile>> {
    let mut rels = Vec::new();
    collect_rs(
        &config.root,
        Path::new(""),
        &config.skip_prefixes,
        &mut rels,
    )?;
    rels.sort();
    let mut out = Vec::with_capacity(rels.len());
    for rel in rels {
        let text = std::fs::read_to_string(config.root.join(&rel))?;
        out.push(SourceFile::parse(rel, text));
    }
    Ok(out)
}

fn collect_rs(
    root: &Path,
    rel_dir: &Path,
    skip: &[String],
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root.join(rel_dir))? {
        let entry = entry?;
        let name = entry.file_name();
        let rel = rel_dir.join(&name);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if skip
            .iter()
            .any(|p| rel_str == *p || rel_str.starts_with(&format!("{p}/")))
        {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs(root, &rel, skip, out)?;
        } else if ty.is_file() && rel_str.ends_with(".rs") {
            out.push(rel_str);
        }
    }
    Ok(())
}

/// Runs `passes` over the tree described by `config`.
pub fn run(config: &Config, passes: &[PassId]) -> std::io::Result<Vec<Finding>> {
    let sources = load_sources(config)?;
    let mut findings = Vec::new();
    for &pass in passes {
        match pass {
            PassId::UnsafeAudit => pass_unsafe_audit(config, &sources, &mut findings),
            PassId::LockDiscipline => pass_lock_discipline(config, &sources, &mut findings),
            PassId::AtomicLedger => pass_atomic_ledger(config, &sources, &mut findings),
            PassId::HotPathPanic => pass_hot_path_panic(config, &sources, &mut findings),
            PassId::FailpointCoherence => pass_failpoint_coherence(config, &sources, &mut findings),
        }
    }
    findings.sort_by(|a, b| (a.pass, &a.file, a.line).cmp(&(b.pass, &b.file, b.line)));
    Ok(findings)
}

// ---------------------------------------------------------------------------
// Pass 1: unsafe-audit
// ---------------------------------------------------------------------------

/// How far above an `unsafe` token a `SAFETY` comment may sit (lines).
/// Generous enough for a SAFETY paragraph above a `#[target_feature]`
/// attribute stack, tight enough that an unrelated comment cannot vouch for
/// distant code.
const SAFETY_WINDOW: usize = 10;

fn unsafe_sites(src: &SourceFile) -> Vec<usize> {
    let mut sites = Vec::new();
    let mut at = 0;
    while let Some(pos) = lex::find_word(&src.masked.code, "unsafe", at) {
        sites.push(pos);
        at = pos + "unsafe".len();
    }
    sites
}

fn pass_unsafe_audit(config: &Config, sources: &[SourceFile], out: &mut Vec<Finding>) {
    let mut inventory: BTreeMap<String, usize> = BTreeMap::new();
    for src in sources {
        let sites = unsafe_sites(src);
        if !sites.is_empty() {
            inventory.insert(src.rel.clone(), sites.len());
        }
        for pos in sites {
            let line = src.line_of(pos);
            if !src.comment_near(line, SAFETY_WINDOW, "SAFETY") {
                out.push(Finding {
                    pass: PassId::UnsafeAudit,
                    file: src.rel.clone(),
                    line,
                    message: format!(
                        "`unsafe` without a `// SAFETY:` justification within \
                         the preceding {SAFETY_WINDOW} lines"
                    ),
                });
            }
        }
    }

    let ledger_path = config.root.join(&config.unsafety_ledger);
    let ledger_text = match std::fs::read_to_string(&ledger_path) {
        Ok(t) => t,
        Err(_) => {
            out.push(Finding {
                pass: PassId::UnsafeAudit,
                file: config.unsafety_ledger.clone(),
                line: 1,
                message: "unsafe-inventory ledger is missing — seed it with \
                          `ij-analysis -- inventory`"
                    .into(),
            });
            return;
        }
    };
    let ledger = parse_unsafety_ledger(&ledger_text);
    for (file, &count) in &inventory {
        match ledger.get(file) {
            None => out.push(Finding {
                pass: PassId::UnsafeAudit,
                file: file.clone(),
                line: 1,
                message: format!(
                    "{count} unsafe site(s) not recorded in {} — update the \
                     ledger via `ij-analysis -- inventory`",
                    config.unsafety_ledger
                ),
            }),
            Some(&(recorded, _)) if recorded != count => out.push(Finding {
                pass: PassId::UnsafeAudit,
                file: file.clone(),
                line: 1,
                message: format!(
                    "{} records {recorded} unsafe site(s) but the file has \
                     {count} — review the diff, then update the ledger",
                    config.unsafety_ledger
                ),
            }),
            Some(_) => {}
        }
    }
    for (file, &(recorded, line)) in &ledger {
        if !inventory.contains_key(file) {
            out.push(Finding {
                pass: PassId::UnsafeAudit,
                file: config.unsafety_ledger.clone(),
                line,
                message: format!(
                    "stale ledger entry: `{file}` (recorded {recorded} site(s)) \
                     has no unsafe code any more"
                ),
            });
        }
    }
}

/// Parses `## <path> — <n> site(s)` headers → path → (count, ledger line).
fn parse_unsafety_ledger(text: &str) -> BTreeMap<String, (usize, usize)> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(rest) = line.strip_prefix("## ") else {
            continue;
        };
        let Some((path, tail)) = rest.split_once(" — ") else {
            continue;
        };
        let count = tail
            .split_whitespace()
            .next()
            .and_then(|w| w.parse::<usize>().ok())
            .unwrap_or(0);
        out.insert(path.trim().to_string(), (count, idx + 1));
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 2: lock-discipline
// ---------------------------------------------------------------------------

fn pass_lock_discipline(config: &Config, sources: &[SourceFile], out: &mut Vec<Finding>) {
    for src in sources {
        if config.lock_exempt.contains(&src.rel) {
            continue;
        }
        let code = src.masked.code.as_bytes();
        for method in ["lock", "read", "write"] {
            let pat = format!(".{method}");
            let mut at = 0;
            while let Some(rel) = src.masked.code[at..].find(&pat) {
                let pos = at + rel;
                at = pos + pat.len();
                // Require an *empty* argument list — `.read(&mut buf)` is
                // io::Read, not a lock — then an immediate `.unwrap(` or
                // `.expect(` (whitespace/newlines allowed between links,
                // but `.unwrap_or_else(` must not match).
                let mut j = pos + pat.len();
                if code.get(j) != Some(&b'(') {
                    continue;
                }
                j += 1;
                while code.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
                    j += 1;
                }
                if code.get(j) != Some(&b')') {
                    continue;
                }
                j += 1;
                while code.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
                    j += 1;
                }
                if code.get(j) != Some(&b'.') {
                    continue;
                }
                j += 1;
                while code.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
                    j += 1;
                }
                let rest = &src.masked.code[j..];
                let consumer = if rest.starts_with("unwrap(") {
                    "unwrap"
                } else if rest.starts_with("expect(") {
                    "expect"
                } else {
                    continue;
                };
                out.push(Finding {
                    pass: PassId::LockDiscipline,
                    file: src.rel.clone(),
                    line: src.line_of(pos),
                    message: format!(
                        "bare `.{method}().{consumer}(…)` — use \
                         `ij_relation::sync::{}_recover` so a poisoned lock \
                         recovers instead of cascading panics",
                        if method == "lock" { "lock" } else { method }
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: atomic-ordering ledger
// ---------------------------------------------------------------------------

const ATOMIC_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// (file, variant) → count.  Only `std::sync::atomic::Ordering` variants
/// count, so `std::cmp::Ordering::Less` (`Less`/`Greater`/`Equal`) never
/// trips the ledger.
fn atomic_sites(sources: &[SourceFile]) -> BTreeMap<(String, String), usize> {
    let mut out = BTreeMap::new();
    for src in sources {
        let mut at = 0;
        while let Some(rel) = src.masked.code[at..].find("Ordering::") {
            let pos = at + rel;
            at = pos + "Ordering::".len();
            let rest = &src.masked.code[at..];
            for v in ATOMIC_VARIANTS {
                if rest.starts_with(v)
                    && !rest[v.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
                {
                    *out.entry((src.rel.clone(), v.to_string())).or_insert(0) += 1;
                    break;
                }
            }
        }
    }
    out
}

fn pass_atomic_ledger(config: &Config, sources: &[SourceFile], out: &mut Vec<Finding>) {
    let sites = atomic_sites(sources);
    let ledger_path = config.root.join(&config.atomics_ledger);
    let ledger_text = match std::fs::read_to_string(&ledger_path) {
        Ok(t) => t,
        Err(_) => {
            out.push(Finding {
                pass: PassId::AtomicLedger,
                file: config.atomics_ledger.clone(),
                line: 1,
                message: "atomic-ordering ledger is missing — seed it with \
                          `ij-analysis -- inventory`"
                    .into(),
            });
            return;
        }
    };
    let (ledger, malformed) = parse_atomics_ledger(&ledger_text);
    for (line, msg) in malformed {
        out.push(Finding {
            pass: PassId::AtomicLedger,
            file: config.atomics_ledger.clone(),
            line,
            message: msg,
        });
    }
    for (key, &count) in &sites {
        let (file, variant) = key;
        match ledger.get(key) {
            None => out.push(Finding {
                pass: PassId::AtomicLedger,
                file: file.clone(),
                line: 1,
                message: format!(
                    "`Ordering::{variant}` ({count} site(s)) is not justified \
                     in {} — add an entry with a rationale",
                    config.atomics_ledger
                ),
            }),
            Some(&(recorded, _)) if recorded != count => out.push(Finding {
                pass: PassId::AtomicLedger,
                file: file.clone(),
                line: 1,
                message: format!(
                    "{} records {recorded} `Ordering::{variant}` site(s) but \
                     the file has {count} — review the diff, then update the \
                     ledger",
                    config.atomics_ledger
                ),
            }),
            Some(_) => {}
        }
    }
    for (key, &(recorded, line)) in &ledger {
        if !sites.contains_key(key) {
            out.push(Finding {
                pass: PassId::AtomicLedger,
                file: config.atomics_ledger.clone(),
                line,
                message: format!(
                    "stale ledger entry: `{}` no longer uses `Ordering::{}` \
                     (recorded {recorded} site(s))",
                    key.0, key.1
                ),
            });
        }
    }
}

/// Parses `## <path>` sections with `` - `Ordering::X` ×N — rationale ``
/// bullets → ((path, variant) → (count, ledger line)) plus malformed-line
/// diagnostics (a bullet without a rationale is malformed: the whole point
/// of the ledger is the justification).
#[allow(clippy::type_complexity)]
fn parse_atomics_ledger(
    text: &str,
) -> (
    BTreeMap<(String, String), (usize, usize)>,
    Vec<(usize, String)>,
) {
    let mut out = BTreeMap::new();
    let mut bad = Vec::new();
    let mut current: Option<String> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if let Some(rest) = line.strip_prefix("## ") {
            current = Some(rest.trim().to_string());
            continue;
        }
        let Some(bullet) = line.strip_prefix("- `Ordering::") else {
            continue;
        };
        let Some(file) = current.clone() else {
            bad.push((lineno, "ledger bullet before any `## <file>` header".into()));
            continue;
        };
        let Some((variant, tail)) = bullet.split_once('`') else {
            bad.push((lineno, "malformed ledger bullet".into()));
            continue;
        };
        let tail = tail.trim_start();
        let Some(tail) = tail.strip_prefix('×') else {
            bad.push((lineno, "ledger bullet is missing the `×N` count".into()));
            continue;
        };
        let (count_str, rationale) = match tail.split_once(" — ") {
            Some((c, r)) => (c.trim(), r.trim()),
            None => (tail.trim(), ""),
        };
        let Ok(count) = count_str.parse::<usize>() else {
            bad.push((lineno, format!("unparseable ledger count `{count_str}`")));
            continue;
        };
        if rationale.is_empty() {
            bad.push((
                lineno,
                format!("`Ordering::{variant}` entry has no rationale — justify the ordering"),
            ));
            continue;
        }
        out.insert((file, variant.to_string()), (count, lineno));
    }
    (out, bad)
}

// ---------------------------------------------------------------------------
// Pass 4: hot-path panic lint
// ---------------------------------------------------------------------------

/// Lines of grace above a panic site for the allow directive (directly
/// above is idiomatic; 3 tolerates a rustfmt-wrapped chain link).
const ALLOW_WINDOW: usize = 3;
const ALLOW_DIRECTIVE: &str = "ij-analysis: allow(panic)";

fn pass_hot_path_panic(config: &Config, sources: &[SourceFile], out: &mut Vec<Finding>) {
    for src in sources {
        if !config.hot_files.contains(&src.rel) {
            continue;
        }
        let mut sites: Vec<(usize, String)> = Vec::new();
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            let mut at = 0;
            while let Some(pos) = lex::find_word(&src.masked.code, mac, at) {
                at = pos + mac.len();
                if src.masked.code[at..].starts_with('!') {
                    sites.push((pos, format!("{mac}!")));
                }
            }
        }
        for method in ["unwrap", "expect"] {
            let pat = format!(".{method}(");
            let mut at = 0;
            while let Some(rel) = src.masked.code[at..].find(&pat) {
                let pos = at + rel;
                at = pos + pat.len();
                sites.push((pos, format!(".{method}()")));
            }
        }
        sites.sort();
        for (pos, what) in sites {
            if src.in_test_region(pos) {
                continue;
            }
            let line = src.line_of(pos);
            if !src.comment_near(line, ALLOW_WINDOW, ALLOW_DIRECTIVE) {
                out.push(Finding {
                    pass: PassId::HotPathPanic,
                    file: src.rel.clone(),
                    line,
                    message: format!(
                        "`{what}` on a hot path without `// {ALLOW_DIRECTIVE} — \
                         <reason>` — justify it or return an error"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 5: failpoint-site coherence
// ---------------------------------------------------------------------------

/// String contents of every literal declared inside `mod sites { … }` of
/// the declaration file.
fn declared_sites(src: &SourceFile) -> Vec<String> {
    let Some(mod_pos) = lex::find_word(&src.masked.code, "sites", 0) else {
        return Vec::new();
    };
    // Find the brace block that follows `mod sites`.
    let Some(open_rel) = src.masked.code[mod_pos..].find('{') else {
        return Vec::new();
    };
    let open = mod_pos + open_rel;
    let bytes = src.masked.code.as_bytes();
    let mut depth = 0usize;
    let mut close = src.masked.code.len();
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        if b == b'{' {
            depth += 1;
        } else if b == b'}' {
            depth -= 1;
            if depth == 0 {
                close = k;
                break;
            }
        }
    }
    src.masked
        .strings
        .iter()
        .filter(|s| open < s.content_start && s.content_start < close)
        .map(|s| s.content.clone())
        .collect()
}

fn pass_failpoint_coherence(config: &Config, sources: &[SourceFile], out: &mut Vec<Finding>) {
    let decl = sources.iter().find(|s| s.rel == config.sites_decl);
    let declared: Vec<String> = decl.map(declared_sites).unwrap_or_default();
    if declared.is_empty() {
        out.push(Finding {
            pass: PassId::FailpointCoherence,
            file: config.sites_decl.clone(),
            line: 1,
            message: "no failpoint sites declared (expected `pub mod sites` \
                      with `pub const` string constants)"
                .into(),
        });
        return;
    }
    for src in sources {
        if src.rel == config.sites_decl {
            continue; // the declaration file itself (and its unit tests)
        }
        for call in ["faults::point", "faults::configure"] {
            let mut at = 0;
            while let Some(rel) = src.masked.code[at..].find(call) {
                let pos = at + rel;
                at = pos + call.len();
                let bytes = src.masked.code.as_bytes();
                let mut j = pos + call.len();
                while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
                    j += 1;
                }
                if bytes.get(j) != Some(&b'(') {
                    continue;
                }
                j += 1;
                while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    continue; // non-literal site argument: out of scope
                }
                let Some(lit) = src.masked.strings.iter().find(|s| s.content_start == j + 1) else {
                    continue;
                };
                if !declared.contains(&lit.content) {
                    out.push(Finding {
                        pass: PassId::FailpointCoherence,
                        file: src.rel.clone(),
                        line: src.line_of(pos),
                        message: format!(
                            "failpoint site `\"{}\"` is not declared in {} — \
                             declared sites: {}",
                            lit.content,
                            config.sites_decl,
                            declared
                                .iter()
                                .map(|d| format!("`\"{d}\"`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Inventory generation (ledger seeding)
// ---------------------------------------------------------------------------

/// Renders fresh `UNSAFETY.md` / `ATOMICS.md` stanza bodies from the
/// current tree, for pasting after an intentional change.  Rationales are
/// emitted as `<rationale>` placeholders — the ledger parser rejects empty
/// ones, and a placeholder is a visible review prompt, not a waiver.
pub fn render_inventory(config: &Config) -> std::io::Result<String> {
    let sources = load_sources(config)?;
    let mut out = String::new();
    out.push_str("### UNSAFETY.md stanzas\n\n");
    for src in &sources {
        let sites = unsafe_sites(src);
        if !sites.is_empty() {
            let lines: Vec<String> = sites.iter().map(|&p| src.line_of(p).to_string()).collect();
            out.push_str(&format!(
                "## {} — {} sites\n\n(lines {})\n\n",
                src.rel,
                sites.len(),
                lines.join(", ")
            ));
        }
    }
    out.push_str("### ATOMICS.md stanzas\n\n");
    let sites = atomic_sites(&sources);
    let mut current = String::new();
    for ((file, variant), count) in &sites {
        if *file != current {
            out.push_str(&format!("## {file}\n\n"));
            current = file.clone();
        }
        out.push_str(&format!("- `Ordering::{variant}` ×{count} — <rationale>\n"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Workspace-root discovery
// ---------------------------------------------------------------------------

/// Walks up from `start` looking for a `Cargo.toml` containing a
/// `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

pub mod selftest;
