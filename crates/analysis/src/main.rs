//! `ij-analysis` — CLI for the in-repo static-analysis suite.
//!
//! ```text
//! cargo run -p ij-analysis -- check [--only PASS]... [--skip PASS]... [--root DIR]
//! cargo run -p ij-analysis -- self-test [--root DIR]
//! cargo run -p ij-analysis -- inventory [--root DIR]
//! cargo run -p ij-analysis -- list
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/IO error.

use ij_analysis::{find_workspace_root, render_inventory, selftest, Config, PassId};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: ij-analysis <command> [options]

commands:
  check       run the invariant passes over the workspace sources
  self-test   run all passes over crates/analysis/fixtures and assert the
              seeded violations are caught
  inventory   print fresh UNSAFETY.md / ATOMICS.md stanzas for the tree
  list        list the passes and what each enforces

options:
  --only PASS   run only this pass (repeatable)
  --skip PASS   run all passes except this one (repeatable)
  --root DIR    workspace root (default: discovered by walking up from the
                current directory to a Cargo.toml with a [workspace] table)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ij-analysis: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };

    let mut only: Vec<PassId> = Vec::new();
    let mut skip: Vec<PassId> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--only" | "--skip" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a pass name"))?;
                let pass = PassId::parse(value).ok_or_else(|| {
                    format!(
                        "unknown pass `{value}` (have: {})",
                        PassId::ALL.map(|p| p.name()).join(", ")
                    )
                })?;
                if arg == "--only" {
                    only.push(pass)
                } else {
                    skip.push(pass)
                }
            }
            "--root" => {
                let value = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(value));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !only.is_empty() && !skip.is_empty() {
        return Err("--only and --skip are mutually exclusive".into());
    }

    if command == "list" {
        for pass in PassId::ALL {
            println!("{:<22} {}", pass.name(), pass.describe());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };

    match command.as_str() {
        "check" => {
            let passes: Vec<PassId> = if !only.is_empty() {
                only
            } else {
                PassId::ALL
                    .into_iter()
                    .filter(|p| !skip.contains(p))
                    .collect()
            };
            let config = Config::workspace(root);
            let findings = crate_run(&config, &passes)?;
            if findings.is_empty() {
                println!(
                    "ij-analysis: OK — {} pass(es) clean over {}",
                    passes.len(),
                    config.root.display()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("ij-analysis: {} finding(s)", findings.len());
                Ok(ExitCode::FAILURE)
            }
        }
        "self-test" => match selftest::run(&root) {
            Ok(summary) => {
                println!("ij-analysis: {summary}");
                Ok(ExitCode::SUCCESS)
            }
            Err(report) => {
                eprintln!("ij-analysis: {report}");
                Ok(ExitCode::FAILURE)
            }
        },
        "inventory" => {
            let config = Config::workspace(root);
            let stanzas = render_inventory(&config).map_err(|e| e.to_string())?;
            print!("{stanzas}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn crate_run(config: &Config, passes: &[PassId]) -> Result<Vec<ij_analysis::Finding>, String> {
    ij_analysis::run(config, passes).map_err(|e| format!("scan failed: {e}"))
}
