//! Self-test: proves every pass actually fires.
//!
//! A linter that silently stops matching is worse than no linter — CI goes
//! green while the invariant rots.  `ij-analysis -- self-test` runs all
//! five passes over the seeded-violation tree in `crates/analysis/fixtures/`
//! (one deliberately broken file per pass, plus ledgers with deliberate
//! mismatches and a `clean.rs` stuffed with look-alike patterns inside
//! strings and comments) and asserts the exact expected findings: every
//! seeded violation is caught, and nothing in `clean.rs` is flagged.

use crate::{Config, Finding, PassId};
use std::path::Path;

struct Expectation {
    pass: PassId,
    file: &'static str,
    /// Substring that must appear in the finding's message.
    needle: &'static str,
}

const EXPECTED: &[Expectation] = &[
    // unsafe-audit: one unannotated site, one ledger undercount, one stale
    // ledger entry.
    Expectation {
        pass: PassId::UnsafeAudit,
        file: "unsafe_missing_safety.rs",
        needle: "without a `// SAFETY:`",
    },
    Expectation {
        pass: PassId::UnsafeAudit,
        file: "unsafe_missing_safety.rs",
        needle: "records 1 unsafe site(s) but the file has 2",
    },
    Expectation {
        pass: PassId::UnsafeAudit,
        file: "UNSAFETY.md",
        needle: "stale ledger entry: `ghost.rs`",
    },
    // lock-discipline: all three guard methods, including a rustfmt-wrapped
    // multiline chain.
    Expectation {
        pass: PassId::LockDiscipline,
        file: "bare_lock_unwrap.rs",
        needle: "bare `.lock().unwrap(",
    },
    Expectation {
        pass: PassId::LockDiscipline,
        file: "bare_lock_unwrap.rs",
        needle: "bare `.read().expect(",
    },
    Expectation {
        pass: PassId::LockDiscipline,
        file: "bare_lock_unwrap.rs",
        needle: "bare `.write().unwrap(",
    },
    // atomic-ledger: an unlisted variant, a stale variant, a stale file.
    Expectation {
        pass: PassId::AtomicLedger,
        file: "unlisted_ordering.rs",
        needle: "`Ordering::SeqCst` (1 site(s)) is not justified",
    },
    Expectation {
        pass: PassId::AtomicLedger,
        file: "ATOMICS.md",
        needle: "`unlisted_ordering.rs` no longer uses `Ordering::Acquire`",
    },
    Expectation {
        pass: PassId::AtomicLedger,
        file: "ATOMICS.md",
        needle: "`ghost.rs` no longer uses `Ordering::SeqCst`",
    },
    // hot-path-panic: an unannotated panic! and an unannotated .expect();
    // the annotated site and the #[cfg(test)] module must stay silent.
    Expectation {
        pass: PassId::HotPathPanic,
        file: "hot_path_panic.rs",
        needle: "`panic!` on a hot path",
    },
    Expectation {
        pass: PassId::HotPathPanic,
        file: "hot_path_panic.rs",
        needle: "`.expect()` on a hot path",
    },
    // failpoint-coherence: one typo'd site name; the declared name and the
    // non-literal call must stay silent.
    Expectation {
        pass: PassId::FailpointCoherence,
        file: "unknown_failpoint.rs",
        needle: "failpoint site `\"cache-isnert\"` is not declared",
    },
];

/// Exact expected finding count per pass — a pass producing *extra*
/// findings on the fixtures is as broken as one producing none.
const EXPECTED_COUNTS: &[(PassId, usize)] = &[
    (PassId::UnsafeAudit, 3),
    (PassId::LockDiscipline, 3),
    (PassId::AtomicLedger, 3),
    (PassId::HotPathPanic, 2),
    (PassId::FailpointCoherence, 1),
];

/// Runs the self-test over `<workspace_root>/crates/analysis/fixtures`.
/// Returns a one-line summary on success, a full mismatch report on error.
pub fn run(workspace_root: &Path) -> Result<String, String> {
    let fixtures = workspace_root.join("crates/analysis/fixtures");
    if !fixtures.is_dir() {
        return Err(format!(
            "fixture directory {} is missing",
            fixtures.display()
        ));
    }
    let config = Config::fixtures(fixtures);
    let findings =
        crate::run(&config, &PassId::ALL).map_err(|e| format!("scanning fixtures failed: {e}"))?;

    let mut errors = Vec::new();
    for exp in EXPECTED {
        let hit = findings
            .iter()
            .any(|f| f.pass == exp.pass && f.file == exp.file && f.message.contains(exp.needle));
        if !hit {
            errors.push(format!(
                "pass `{}` did NOT fire on the seeded violation in {} \
                 (expected a finding containing {:?})",
                exp.pass, exp.file, exp.needle
            ));
        }
    }
    for &(pass, want) in EXPECTED_COUNTS {
        let got = findings.iter().filter(|f| f.pass == pass).count();
        if got != want {
            errors.push(format!(
                "pass `{pass}` produced {got} finding(s) on the fixtures, expected exactly {want}"
            ));
        }
    }
    for f in findings.iter().filter(|f| f.file == "clean.rs") {
        errors.push(format!("false positive on clean.rs: {f}"));
    }

    if errors.is_empty() {
        Ok(format!(
            "self-test OK: {} seeded violations caught across {} passes, clean.rs clean",
            findings.len(),
            PassId::ALL.len()
        ))
    } else {
        let mut report = String::from("self-test FAILED:\n");
        for e in &errors {
            report.push_str(&format!("  - {e}\n"));
        }
        report.push_str("\nall fixture findings:\n");
        for f in &findings {
            report.push_str(&format!("  {f}\n"));
        }
        Err(report)
    }
}

/// The fixture findings themselves, for the integration tests.
pub fn fixture_findings(workspace_root: &Path) -> std::io::Result<Vec<Finding>> {
    let config = Config::fixtures(workspace_root.join("crates/analysis/fixtures"));
    crate::run(&config, &PassId::ALL)
}
