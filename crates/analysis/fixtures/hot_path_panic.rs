//! Seeded violations for the hot-path panic lint: an annotated unwrap
//! (silent), an unannotated `panic!` and `.expect()` (flagged), and a
//! `#[cfg(test)]` module full of panics (silent — tests may panic freely).

pub fn annotated(v: &[u32]) -> u32 {
    // ij-analysis: allow(panic) — fixture: explicitly waived site
    *v.first().unwrap()
}

pub fn unannotated(v: &[u32]) -> u32 {
    if v.is_empty() {
        panic!("empty input");
    }
    v.iter().copied().max().expect("non-empty checked above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        assert_eq!(super::annotated(&[7]), 7);
        let _ = std::panic::catch_unwind(|| super::unannotated(&[]));
        Some(1u32).unwrap();
        panic!("test panics are exempt");
    }
}
