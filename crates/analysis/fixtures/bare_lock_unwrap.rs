//! Seeded violations for the lock-discipline pass: all three guard
//! methods, one as a rustfmt-wrapped multiline chain; the recover-helper
//! idiom (`unwrap_or_else`) and an io-style call with arguments must stay
//! silent.

use std::io::Read;
use std::sync::{Mutex, RwLock};

pub fn bad(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {
    let a = *m.lock().unwrap();
    let b = *rw.read().expect("rwlock poisoned");
    let c = *rw
        .write()
        .unwrap();
    a + b + c
}

pub fn good(m: &Mutex<u32>, mut f: std::fs::File) -> u32 {
    // The recover idiom: `.unwrap_or_else` must not match `.unwrap(`.
    let v = *m.lock().unwrap_or_else(|e| e.into_inner());
    // io::Read with arguments is not a lock acquisition.
    let mut buf = [0u8; 4];
    let n = f.read(&mut buf).unwrap_or(0);
    v + n as u32
}
