//! The no-false-positive gauntlet: every pattern the passes hunt for,
//! hidden where a real compiler would never see code — string literals,
//! raw strings, comments, doc-comments.  The self-test asserts that *no*
//! pass produces a finding against this file.
//!
//! unsafe { no_safety_needed_in_doc_comments() };
//! x.lock().unwrap(); Ordering::SeqCst; faults::point("bogus-site");

/// Doc comment decoy: `unsafe`, `.read().unwrap()`, `Ordering::Relaxed`,
/// panic!("nope"), faults::configure("also-bogus", 0, act).
pub fn strings_full_of_violations() -> Vec<String> {
    let a = "unsafe { transmute(x) } with no SAFETY comment".to_string();
    let b = "m.lock().unwrap() and rw.write().expect(\"poisoned\")".to_string();
    let c = r#"Ordering::SeqCst Ordering::Relaxed Ordering::AcqRel"#.to_string();
    let d = r##"faults::point("never-declared-site") inside a raw string"##.to_string();
    let e = "panic! unwrap() expect() todo! unimplemented!".to_string();
    vec![a, b, c, d, e]
}

/* Block comment decoy, nested for good measure:
   /* unsafe { } .lock().unwrap() Ordering::Release */
   faults::point("block-comment-site") panic!("still a comment")
*/
pub fn lifetimes_are_not_chars<'a>(x: &'a str) -> &'a str {
    // Labels parse as labels, not as unterminated char literals that would
    // swallow the rest of the file (where a decoy `unsafe` hides below).
    'outer: for _ in 0..1 {
        break 'outer;
    }
    let _tricky = '"'; // a char literal containing a quote
    let _escaped = '\''; // an escaped-quote char literal
    x
}

pub fn byte_strings_and_raw_identifiers() -> usize {
    let r#mod = b"unsafe .lock().unwrap() Ordering::SeqCst";
    let raw = br#"faults::point("byte-raw-site")"#;
    r#mod.len() + raw.len()
}
