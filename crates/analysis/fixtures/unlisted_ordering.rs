//! Seeded violations for the atomic-ordering ledger pass: two listed
//! `Relaxed` sites (silent), one unlisted `SeqCst` (flagged), and
//! `std::cmp::Ordering` look-alikes that must never count as atomics.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn listed(x: &AtomicUsize) {
    x.fetch_add(1, Ordering::Relaxed);
    x.fetch_add(1, Ordering::Relaxed);
}

pub fn unlisted(x: &AtomicUsize) -> usize {
    x.load(Ordering::SeqCst)
}

pub fn not_an_atomic(a: i32, b: i32) -> bool {
    matches!(a.cmp(&b), std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
}
