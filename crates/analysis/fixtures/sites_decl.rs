//! Fixture twin of `ij_relation::faults::sites`: the declared failpoint
//! site names the coherence pass checks call-site literals against.

pub mod sites {
    pub const TRIE_BUILD: &str = "trie-build";
    pub const SHARD_WORKER: &str = "shard-worker";
}
