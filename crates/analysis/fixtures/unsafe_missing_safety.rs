//! Seeded violations for the unsafe-audit pass: one annotated site (must
//! stay silent), one unannotated site (must be flagged), and a site count
//! (2) that disagrees with the fixture ledger entry (1).

pub fn annotated() -> u32 {
    let x = 1u32;
    // SAFETY: the pointer is derived from a live local reference and read
    // exactly once before the local goes out of scope.
    unsafe { *(&x as *const u32) }
}

pub fn padding_a() -> u32 {
    1
}

pub fn padding_b() -> u32 {
    2
}

pub fn padding_c() -> u32 {
    // Comment-free distance so the justification above cannot vouch for
    // the site below (the audit window is 10 lines).
    3
}

pub fn unannotated() -> u32 {
    let x = 2u32;
    unsafe { *(&x as *const u32) }
}
