//! Seeded violation for the failpoint-coherence pass: one declared site
//! (silent), one typo'd site (flagged), one non-literal argument (out of
//! scope, silent).

pub fn run(dynamic_site: &str) {
    faults::point("trie-build");
    faults::point("cache-isnert");
    faults::configure("shard-worker", 0, ());
    faults::point(dynamic_site);
}

mod faults {
    pub fn point(_site: &str) {}
    pub fn configure(_site: &str, _after: usize, _action: ()) {}
}
