//! Property + fixture tests for the `ij-analysis` scanner.
//!
//! The property tests generate adversarial source files that bury every
//! pattern the passes hunt for inside string literals, raw strings, line
//! comments, block comments and doc-comments, and assert the code mask
//! never exposes them (no false positives) — while the same payloads
//! pasted as real code *do* survive masking (no false negatives from
//! over-blanking).  The fixture tests run the full self-test, which
//! asserts every pass fires on its seeded violation.

use ij_analysis::lex;
use proptest::prelude::*;
use std::path::PathBuf;

/// The textual patterns the five passes match against the code mask.
const PAYLOADS: &[&str] = &[
    "unsafe { transmute(x) }",
    "m.lock().unwrap()",
    "rw.read().expect(\\\"poisoned\\\")", // escaped for string containers
    "rw.write().unwrap()",
    "Ordering::SeqCst",
    "Ordering::Relaxed",
    "panic!(oops)",
    "v.first().unwrap()",
    "todo!()",
    "faults::point(bogus)",
];

/// Raw-string-safe payloads (no escapes needed).
const RAW_PAYLOADS: &[&str] = &[
    "unsafe { transmute(x) }",
    "m.lock().unwrap()",
    "Ordering::AcqRel",
    "unimplemented!()",
    "faults::configure(ghost, 0, act)",
];

/// Containers that must hide a payload from the code mask.
fn containered(container: usize, payload: &str, raw: &str) -> String {
    match container % 6 {
        0 => format!("// {payload}\n"),
        1 => format!("/// {payload}\n"),
        2 => format!("/* {payload} */\n"),
        3 => format!("/* outer /* {payload} */ inner */\n"),
        4 => format!("let s = \"{payload}\";\n"),
        _ => format!("let r = r#\"{raw}\"#;\n"),
    }
}

/// Benign filler lines the generator interleaves between containers.
const FILLER: &[&str] = &[
    "fn benign() -> u32 { 41 + 1 }\n",
    "let v: Vec<u32> = Vec::new();\n",
    "struct S { field: u64 }\n",
    "for _ in 0..3 { work(); }\n",
    "let lifetime: &'static str = stat();\n",
    "'label: loop { break 'label; }\n",
    "let ch = 'x'; let q = b'\"';\n",
];

/// Tokens that prove a payload leaked out of its container.  (Substrings
/// of the payload list that cannot occur in the filler.)
const LEAK_MARKERS: &[&str] = &[
    "unsafe",
    ".lock()",
    ".read()",
    ".write()",
    "Ordering::",
    "panic!",
    ".unwrap(",
    ".expect(",
    "todo!",
    "unimplemented!",
    "faults::point",
    "faults::configure",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn contained_payloads_never_reach_the_code_mask(
        picks in prop::collection::vec((0usize..6, 0usize..10, 0usize..5, 0usize..7), 1..=12)
    ) {
        let mut src = String::new();
        for &(container, p, r, f) in &picks {
            src.push_str(FILLER[f]);
            src.push_str(&containered(container, PAYLOADS[p], RAW_PAYLOADS[r]));
        }
        let m = lex::mask(&src);
        prop_assert_eq!(m.code.len(), src.len());
        for marker in LEAK_MARKERS {
            prop_assert!(
                !m.code.contains(marker),
                "`{}` leaked into the code mask of:\n{}\ncode mask:\n{}",
                marker, src, m.code
            );
        }
    }

    #[test]
    fn directives_inside_strings_do_not_count_as_comments(
        n in 1usize..6
    ) {
        let mut src = String::new();
        for _ in 0..n {
            src.push_str("let a = \"// SAFETY: not a comment\";\n");
            src.push_str("let b = \"ij-analysis: allow(panic) in a string\";\n");
            src.push_str("let c = r#\"// SAFETY: raw-string decoy\"#;\n");
        }
        let m = lex::mask(&src);
        prop_assert!(!m.comments.contains("SAFETY"));
        prop_assert!(!m.comments.contains("allow(panic)"));
    }

    #[test]
    fn bare_payloads_survive_masking(p in 0usize..10, f in 0usize..7) {
        // The dual property: masking must not over-blank. A payload pasted
        // as plain code keeps its hunted token (modulo its own string
        // arguments, which rightly blank).
        let payload = PAYLOADS[p].replace("\\\"", "\"");
        let src = format!("{}{}\n", FILLER[f], payload);
        let m = lex::mask(&src);
        let marker = LEAK_MARKERS
            .iter()
            .find(|mk| payload.contains(**mk))
            .expect("every payload carries a marker");
        prop_assert!(
            m.code.contains(marker),
            "`{}` was over-blanked out of:\n{}\ncode mask:\n{}",
            marker, src, m.code
        );
    }

    #[test]
    fn masks_preserve_length_and_newlines(
        picks in prop::collection::vec((0usize..6, 0usize..10, 0usize..5, 0usize..7), 0..=8)
    ) {
        let mut src = String::new();
        for &(container, p, r, f) in &picks {
            src.push_str(&containered(container, PAYLOADS[p], RAW_PAYLOADS[r]));
            src.push_str(FILLER[f]);
        }
        let m = lex::mask(&src);
        prop_assert_eq!(m.code.len(), src.len());
        prop_assert_eq!(m.comments.len(), src.len());
        let nl = |s: &str| -> Vec<usize> {
            s.bytes().enumerate().filter(|(_, b)| *b == b'\n').map(|(i, _)| i).collect()
        };
        prop_assert_eq!(nl(&m.code), nl(&src));
        prop_assert_eq!(nl(&m.comments), nl(&src));
    }
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn self_test_catches_every_seeded_violation() {
    if let Err(report) = ij_analysis::selftest::run(&workspace_root()) {
        panic!("{report}");
    }
}

#[test]
fn shipped_tree_is_clean() {
    let config = ij_analysis::Config::workspace(workspace_root());
    let findings = ij_analysis::run(&config, &ij_analysis::PassId::ALL).expect("scan");
    assert!(
        findings.is_empty(),
        "the shipped tree has findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
}

#[test]
fn every_pass_produces_at_least_one_fixture_finding() {
    let findings = ij_analysis::selftest::fixture_findings(&workspace_root()).expect("scan");
    for pass in ij_analysis::PassId::ALL {
        assert!(
            findings.iter().any(|f| f.pass == pass),
            "pass `{pass}` produced no finding on the seeded fixtures"
        );
    }
}
