//! A static centered interval tree.
//!
//! The related-work section of the paper (Section 2) surveys classical
//! index-based algorithms for binary intersection joins (R-tree joins,
//! relational interval trees, ...).  This module provides the textbook
//! centered interval tree as the index substrate for those baselines: `O(N
//! log N)` construction, `O(log N + k)` stabbing queries and `O(log N + k)`
//! overlap queries, where `k` is the number of reported intervals.
//!
//! The tree is static (built once from a slice of intervals) which matches
//! how the baselines use it: build an index on the inner relation, then probe
//! it once per outer tuple.

use crate::{Interval, OrdF64};

/// A node of the centered interval tree.
#[derive(Debug, Clone)]
struct Node {
    /// The centre point of this node.
    center: OrdF64,
    /// Indices of the intervals containing `center`, sorted by left endpoint
    /// (ascending).
    by_lo: Vec<usize>,
    /// The same intervals sorted by right endpoint (descending).
    by_hi: Vec<usize>,
    /// Subtree with intervals entirely to the left of `center`.
    left: Option<Box<Node>>,
    /// Subtree with intervals entirely to the right of `center`.
    right: Option<Box<Node>>,
}

/// A static centered interval tree over a set of intervals.
///
/// The tree stores indices into the interval slice it was built from; queries
/// report those indices (sorted, deduplicated).
#[derive(Debug, Clone, Default)]
pub struct IntervalTree {
    intervals: Vec<Interval>,
    root: Option<Box<Node>>,
}

impl IntervalTree {
    /// Builds the tree.
    pub fn build(intervals: &[Interval]) -> Self {
        let owned: Vec<Interval> = intervals.to_vec();
        let indices: Vec<usize> = (0..owned.len()).collect();
        let root = build_node(&owned, indices);
        IntervalTree {
            intervals: owned,
            root,
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if the tree stores no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The stored intervals (in insertion order).
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Indices of all intervals containing the point `p` (sorted).
    pub fn stab(&self, p: f64) -> Vec<usize> {
        let mut out = Vec::new();
        let p = OrdF64::new(p);
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if p <= n.center {
                // Intervals at this node whose left endpoint is <= p.
                for &i in &n.by_lo {
                    if OrdF64::new(self.intervals[i].lo()) <= p {
                        out.push(i);
                    } else {
                        break;
                    }
                }
                node = n.left.as_deref();
            } else {
                // Intervals at this node whose right endpoint is >= p.
                for &i in &n.by_hi {
                    if OrdF64::new(self.intervals[i].hi()) >= p {
                        out.push(i);
                    } else {
                        break;
                    }
                }
                node = n.right.as_deref();
            }
        }
        out.sort_unstable();
        out
    }

    /// Indices of all intervals intersecting the query interval (sorted).
    pub fn overlapping(&self, query: Interval) -> Vec<usize> {
        let mut out = Vec::new();
        collect_overlaps(self.root.as_deref(), &self.intervals, query, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if any stored interval intersects the query interval.
    pub fn intersects_any(&self, query: Interval) -> bool {
        exists_overlap(self.root.as_deref(), &self.intervals, query)
    }
}

fn build_node(intervals: &[Interval], mut indices: Vec<usize>) -> Option<Box<Node>> {
    if indices.is_empty() {
        return None;
    }
    // Centre: median of the endpoints of the intervals in this subtree.
    let mut endpoints: Vec<OrdF64> = Vec::with_capacity(indices.len() * 2);
    for &i in &indices {
        endpoints.push(intervals[i].lo_ord());
        endpoints.push(intervals[i].hi_ord());
    }
    endpoints.sort_unstable();
    let center = endpoints[endpoints.len() / 2];

    let mut here: Vec<usize> = Vec::new();
    let mut left: Vec<usize> = Vec::new();
    let mut right: Vec<usize> = Vec::new();
    for i in indices.drain(..) {
        let iv = intervals[i];
        if iv.hi_ord() < center {
            left.push(i);
        } else if iv.lo_ord() > center {
            right.push(i);
        } else {
            here.push(i);
        }
    }
    let mut by_lo = here.clone();
    by_lo.sort_by_key(|&i| intervals[i].lo_ord());
    let mut by_hi = here;
    by_hi.sort_by_key(|&i| std::cmp::Reverse(intervals[i].hi_ord()));

    Some(Box::new(Node {
        center,
        by_lo,
        by_hi,
        left: build_node(intervals, left),
        right: build_node(intervals, right),
    }))
}

fn collect_overlaps(
    node: Option<&Node>,
    intervals: &[Interval],
    query: Interval,
    out: &mut Vec<usize>,
) {
    let Some(n) = node else { return };
    // Intervals stored here: check directly (they all contain the centre, so
    // scanning the sorted lists could prune further, but the per-node lists
    // are small in practice and correctness is what matters most here).
    if query.lo_ord() <= n.center && n.center <= query.hi_ord() {
        // The query spans the centre: every interval stored here overlaps.
        out.extend_from_slice(&n.by_lo);
        collect_overlaps(n.left.as_deref(), intervals, query, out);
        collect_overlaps(n.right.as_deref(), intervals, query, out);
        return;
    }
    if query.hi_ord() < n.center {
        // Only intervals whose left endpoint is <= query.hi can overlap.
        for &i in &n.by_lo {
            if intervals[i].lo_ord() <= query.hi_ord() {
                out.push(i);
            } else {
                break;
            }
        }
        collect_overlaps(n.left.as_deref(), intervals, query, out);
    } else {
        // query.lo > centre: only intervals whose right endpoint is >= query.lo.
        for &i in &n.by_hi {
            if intervals[i].hi_ord() >= query.lo_ord() {
                out.push(i);
            } else {
                break;
            }
        }
        collect_overlaps(n.right.as_deref(), intervals, query, out);
    }
}

fn exists_overlap(node: Option<&Node>, intervals: &[Interval], query: Interval) -> bool {
    let Some(n) = node else { return false };
    if query.lo_ord() <= n.center && n.center <= query.hi_ord() {
        return !n.by_lo.is_empty()
            || exists_overlap(n.left.as_deref(), intervals, query)
            || exists_overlap(n.right.as_deref(), intervals, query);
    }
    if query.hi_ord() < n.center {
        if n.by_lo
            .first()
            .map(|&i| intervals[i].lo_ord() <= query.hi_ord())
            .unwrap_or(false)
        {
            return true;
        }
        exists_overlap(n.left.as_deref(), intervals, query)
    } else {
        if n.by_hi
            .first()
            .map(|&i| intervals[i].hi_ord() >= query.lo_ord())
            .unwrap_or(false)
        {
            return true;
        }
        exists_overlap(n.right.as_deref(), intervals, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_intervals() -> Vec<Interval> {
        vec![
            Interval::new(0.0, 4.0),
            Interval::new(2.0, 9.0),
            Interval::new(5.0, 6.0),
            Interval::new(10.0, 12.0),
            Interval::point(6.0),
            Interval::new(-3.0, -1.0),
            Interval::new(7.5, 8.0),
        ]
    }

    #[test]
    fn stabbing_matches_brute_force() {
        let intervals = sample_intervals();
        let tree = IntervalTree::build(&intervals);
        for p in [
            -4.0, -2.0, 0.0, 1.0, 3.0, 5.5, 6.0, 7.75, 9.5, 10.0, 12.0, 13.0,
        ] {
            let expected: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.stab(p), expected, "stab({p})");
        }
    }

    #[test]
    fn overlap_queries_match_brute_force() {
        let intervals = sample_intervals();
        let tree = IntervalTree::build(&intervals);
        let queries = [
            Interval::new(0.0, 1.0),
            Interval::new(4.5, 5.5),
            Interval::new(-10.0, -5.0),
            Interval::new(6.0, 6.0),
            Interval::new(-5.0, 20.0),
            Interval::new(9.5, 9.9),
        ];
        for q in queries {
            let expected: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.intersects(q))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.overlapping(q), expected, "overlap({q:?})");
            assert_eq!(tree.intersects_any(q), !expected.is_empty(), "any({q:?})");
        }
    }

    #[test]
    fn randomised_agreement_with_brute_force() {
        // Deterministic pseudo-random intervals (no external RNG dependency).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        let intervals: Vec<Interval> = (0..200)
            .map(|_| {
                let lo = next();
                let len = next() / 10.0;
                Interval::new(lo, lo + len)
            })
            .collect();
        let tree = IntervalTree::build(&intervals);
        for _ in 0..100 {
            let lo = next();
            let q = Interval::new(lo, lo + next() / 20.0);
            let expected: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.intersects(q))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.overlapping(q), expected);
            let p = next();
            let expected_stab: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.stab(p), expected_stab);
        }
    }

    #[test]
    fn empty_and_single_interval_trees() {
        let empty = IntervalTree::build(&[]);
        assert!(empty.is_empty());
        assert!(empty.stab(1.0).is_empty());
        assert!(empty.overlapping(Interval::new(0.0, 1.0)).is_empty());
        assert!(!empty.intersects_any(Interval::new(0.0, 1.0)));

        let single = IntervalTree::build(&[Interval::new(1.0, 2.0)]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.stab(1.5), vec![0]);
        assert_eq!(single.overlapping(Interval::new(2.0, 3.0)), vec![0]);
        assert!(single.overlapping(Interval::new(3.0, 4.0)).is_empty());
    }

    #[test]
    fn duplicate_intervals_are_all_reported() {
        let intervals = vec![Interval::new(0.0, 5.0); 4];
        let tree = IntervalTree::build(&intervals);
        assert_eq!(tree.stab(2.0).len(), 4);
        assert_eq!(tree.overlapping(Interval::new(4.0, 9.0)).len(), 4);
    }
}
