//! Closed real intervals.
//!
//! The paper works with intervals with real-valued endpoints.  Remark B.1
//! observes that we can assume all intervals are closed without loss of
//! generality, which is the convention adopted here.  Point intervals
//! `[p, p]` degenerate intersection joins to equality joins.

use crate::OrdF64;
use std::fmt;

/// Why [`Interval::try_new`] rejected its endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalError {
    /// The left endpoint exceeds the right endpoint.
    Reversed {
        /// The offending left endpoint.
        lo: f64,
        /// The offending right endpoint.
        hi: f64,
    },
    /// An endpoint is NaN or infinite.
    NonFinite {
        /// The offending endpoint value.
        value: f64,
    },
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::Reversed { lo, hi } => {
                write!(f, "invalid interval: lo {lo} exceeds hi {hi}")
            }
            IntervalError::NonFinite { value } => {
                write!(f, "invalid interval endpoint: {value} is not finite")
            }
        }
    }
}

impl std::error::Error for IntervalError {}

/// A closed interval `[lo, hi]` with `lo <= hi`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: OrdF64,
    hi: OrdF64,
}

impl Interval {
    /// Creates the closed interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is NaN.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        let lo = OrdF64::new(lo);
        let hi = OrdF64::new(hi);
        assert!(lo <= hi, "invalid interval: lo must not exceed hi");
        Interval { lo, hi }
    }

    /// Checked companion of [`Interval::new`] for data that comes from
    /// outside the type system (generators, parsers, user input): rejects
    /// reversed endpoints *and* non-finite endpoints instead of panicking.
    ///
    /// Unlike [`Interval::new`], which tolerates ±∞ (the extended reals used
    /// by [`Interval::all`]), `try_new` insists on finite endpoints — a
    /// generated workload interval must describe real data.
    ///
    /// ```
    /// use ij_segtree::{Interval, IntervalError};
    ///
    /// assert_eq!(Interval::try_new(1.0, 2.0), Ok(Interval::new(1.0, 2.0)));
    /// assert_eq!(
    ///     Interval::try_new(2.0, 1.0),
    ///     Err(IntervalError::Reversed { lo: 2.0, hi: 1.0 })
    /// );
    /// assert!(Interval::try_new(f64::NEG_INFINITY, 0.0).is_err());
    /// assert!(Interval::try_new(0.0, f64::NAN).is_err());
    /// ```
    #[inline]
    pub fn try_new(lo: f64, hi: f64) -> Result<Self, IntervalError> {
        if !lo.is_finite() {
            return Err(IntervalError::NonFinite { value: lo });
        }
        if !hi.is_finite() {
            return Err(IntervalError::NonFinite { value: hi });
        }
        if lo > hi {
            return Err(IntervalError::Reversed { lo, hi });
        }
        Ok(Interval {
            lo: OrdF64::new(lo),
            hi: OrdF64::new(hi),
        })
    }

    /// Creates the degenerate point interval `[p, p]`.
    #[inline]
    pub fn point(p: f64) -> Self {
        Interval::new(p, p)
    }

    /// The interval `(-inf, +inf)` (as a closed interval over the extended reals).
    #[inline]
    pub fn all() -> Self {
        Interval {
            lo: OrdF64::NEG_INFINITY,
            hi: OrdF64::INFINITY,
        }
    }

    /// Left endpoint.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo.get()
    }

    /// Right endpoint.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi.get()
    }

    /// Left endpoint with total order.
    #[inline]
    pub fn lo_ord(self) -> OrdF64 {
        self.lo
    }

    /// Right endpoint with total order.
    #[inline]
    pub fn hi_ord(self) -> OrdF64 {
        self.hi
    }

    /// Returns true if this is a point interval `[p, p]`.
    #[inline]
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Interval length (`hi - lo`).
    #[inline]
    pub fn length(self) -> f64 {
        self.hi.get() - self.lo.get()
    }

    /// Returns true if the point `p` lies in the interval.
    #[inline]
    pub fn contains_point(self, p: f64) -> bool {
        let p = OrdF64::new(p);
        self.lo <= p && p <= self.hi
    }

    /// Returns true if `other` is contained in `self`.
    #[inline]
    pub fn contains(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Returns true if the two closed intervals intersect.
    #[inline]
    pub fn intersects(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection of the two intervals, if non-empty.
    #[inline]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Intersection of a non-empty set of intervals (Section 4.1's
    /// intersection predicate).  Returns `None` for an empty input.
    pub fn intersect_all<I: IntoIterator<Item = Interval>>(intervals: I) -> Option<Interval> {
        let mut iter = intervals.into_iter();
        let mut acc = iter.next()?;
        for iv in iter {
            acc = acc.intersection(iv)?;
        }
        Some(acc)
    }

    /// Smallest interval containing both inputs.
    #[inline]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Shifts both endpoints by `delta` (used by the distinct-left-endpoint
    /// transformation of Appendix G.1).
    #[inline]
    pub fn shift(self, delta_lo: f64, delta_hi: f64) -> Interval {
        Interval::new(self.lo.get() + delta_lo, self.hi.get() + delta_hi)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_intervals_behave_like_points() {
        let p = Interval::point(3.0);
        assert!(p.is_point());
        assert_eq!(p.length(), 0.0);
        assert!(p.contains_point(3.0));
        assert!(!p.contains_point(3.0001));
    }

    #[test]
    fn intersection_of_overlapping_intervals() {
        let a = Interval::new(1.0, 4.0);
        let b = Interval::new(3.0, 6.0);
        assert!(a.intersects(b));
        assert_eq!(a.intersection(b), Some(Interval::new(3.0, 4.0)));
    }

    #[test]
    fn intersection_of_touching_intervals_is_a_point() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(3.0, 6.0);
        assert_eq!(a.intersection(b), Some(Interval::point(3.0)));
    }

    #[test]
    fn disjoint_intervals_do_not_intersect() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(2.5, 6.0);
        assert!(!a.intersects(b));
        assert_eq!(a.intersection(b), None);
    }

    #[test]
    fn intersect_all_matches_pairwise_folding() {
        let ivs = vec![
            Interval::new(0.0, 10.0),
            Interval::new(2.0, 8.0),
            Interval::new(5.0, 20.0),
        ];
        assert_eq!(Interval::intersect_all(ivs), Some(Interval::new(5.0, 8.0)));
        let empty = vec![
            Interval::new(0.0, 1.0),
            Interval::new(2.0, 3.0),
            Interval::new(0.0, 9.0),
        ];
        assert_eq!(Interval::intersect_all(empty), None);
        assert_eq!(Interval::intersect_all(Vec::new()), None);
    }

    #[test]
    fn containment_and_hull() {
        let a = Interval::new(0.0, 10.0);
        let b = Interval::new(2.0, 3.0);
        assert!(a.contains(b));
        assert!(!b.contains(a));
        assert_eq!(a.hull(Interval::new(-5.0, 1.0)), Interval::new(-5.0, 10.0));
    }

    #[test]
    fn unbounded_interval_contains_everything() {
        let all = Interval::all();
        assert!(all.contains(Interval::new(-1e300, 1e300)));
        assert!(all.intersects(Interval::point(0.0)));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn reversed_endpoints_are_rejected() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn try_new_accepts_exact_boundaries() {
        // Degenerate point interval: lo == hi is valid.
        assert_eq!(Interval::try_new(3.0, 3.0), Ok(Interval::point(3.0)));
        // Largest/smallest finite endpoints are valid.
        assert!(Interval::try_new(f64::MIN, f64::MAX).is_ok());
        // Negative zero equals positive zero under the total order.
        assert_eq!(Interval::try_new(-0.0, 0.0), Ok(Interval::point(0.0)));
        assert_eq!(Interval::try_new(0.0, -0.0), Ok(Interval::point(0.0)));
    }

    #[test]
    fn try_new_rejects_reversed_endpoints() {
        assert_eq!(
            Interval::try_new(1.0 + f64::EPSILON, 1.0),
            Err(IntervalError::Reversed {
                lo: 1.0 + f64::EPSILON,
                hi: 1.0,
            })
        );
    }

    #[test]
    fn try_new_rejects_non_finite_endpoints() {
        for (lo, hi) in [
            (f64::NEG_INFINITY, 0.0),
            (0.0, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
        ] {
            assert!(
                matches!(
                    Interval::try_new(lo, hi),
                    Err(IntervalError::NonFinite { .. })
                ),
                "expected NonFinite for [{lo}, {hi}]"
            );
        }
        // The non-finiteness check must fire before the ordering check, and
        // before NaN can reach `OrdF64::new` (which would panic).
        assert!(matches!(
            Interval::try_new(f64::NAN, f64::NAN),
            Err(IntervalError::NonFinite { .. })
        ));
    }

    #[test]
    fn try_new_agrees_with_new_on_valid_inputs() {
        for (lo, hi) in [(0.0, 1.0), (-5.5, -5.5), (1e300, 1e301)] {
            assert_eq!(Interval::try_new(lo, hi), Ok(Interval::new(lo, hi)));
        }
    }
}
