//! A total order over `f64` so interval endpoints can be sorted, hashed and
//! deduplicated deterministically.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An `f64` wrapper with a total order.
///
/// NaN values are rejected at construction time: interval endpoints must be
/// real numbers (the paper works over ℝ extended with ±∞, both of which are
/// representable as `f64` infinities).
#[derive(Clone, Copy, Default, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a finite or infinite `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "interval endpoints must not be NaN");
        OrdF64(value)
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Negative infinity.
    pub const NEG_INFINITY: OrdF64 = OrdF64(f64::NEG_INFINITY);
    /// Positive infinity.
    pub const INFINITY: OrdF64 = OrdF64(f64::INFINITY);
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Neither side can be NaN, so partial_cmp always succeeds.
        self.0
            .partial_cmp(&other.0)
            .expect("NaN rejected at construction")
    }
}

impl Hash for OrdF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Normalise -0.0 to +0.0 so that values equal under `==` hash alike.
        let bits = if self.0 == 0.0 {
            0.0f64.to_bits()
        } else {
            self.0.to_bits()
        };
        bits.hash(state);
    }
}

impl fmt::Debug for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(value: f64) -> Self {
        OrdF64::new(value)
    }
}

impl From<OrdF64> for f64 {
    #[inline]
    fn from(value: OrdF64) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: OrdF64) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordering_is_total_over_non_nan() {
        let mut values: Vec<OrdF64> = [3.5, -1.0, f64::INFINITY, 0.0, f64::NEG_INFINITY, 2.0]
            .iter()
            .copied()
            .map(OrdF64::new)
            .collect();
        values.sort();
        let sorted: Vec<f64> = values.iter().map(|v| v.get()).collect();
        assert_eq!(
            sorted,
            vec![f64::NEG_INFINITY, -1.0, 0.0, 2.0, 3.5, f64::INFINITY]
        );
    }

    #[test]
    fn zero_signs_hash_alike() {
        assert_eq!(OrdF64::new(0.0), OrdF64::new(-0.0));
        assert_eq!(hash_of(OrdF64::new(0.0)), hash_of(OrdF64::new(-0.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = OrdF64::new(f64::NAN);
    }

    #[test]
    fn conversions_round_trip() {
        let x = OrdF64::from(4.25);
        let y: f64 = x.into();
        assert_eq!(y, 4.25);
    }

    #[test]
    fn infinities_compare_as_extremes() {
        assert!(OrdF64::NEG_INFINITY < OrdF64::new(-1e300));
        assert!(OrdF64::INFINITY > OrdF64::new(1e300));
    }
}
