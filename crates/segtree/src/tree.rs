//! The segment tree of Section 3.
//!
//! Given a set `I` of intervals, let `p_1 < ... < p_m` be their distinct
//! endpoints.  The *elementary segments* `(-inf, p_1), [p_1, p_1], (p_1, p_2),
//! [p_2, p_2], ..., (p_m, +inf)` partition the real line.  The segment tree is
//! a balanced binary tree whose leaves are the elementary segments in order
//! and whose internal nodes correspond to the union of the elementary segments
//! below them.  Every node is identified by the [`BitString`] of its
//! root-to-node path.
//!
//! The two operations the reduction relies on are:
//!
//! * [`SegmentTree::canonical_partition`]: the set of *maximal* nodes whose
//!   segments are contained in a given interval (`CP_I(x)`, Definition 3.1) —
//!   it has `O(log |I|)` nodes (Property 3.2(3));
//! * [`SegmentTree::leaf_of_interval`]: the leaf containing the left endpoint
//!   of an interval (`leaf(x)`).
//!
//! The tree also supports the classic stabbing query (Algorithm 3) used by
//! the baselines and by tests.

use crate::{BitString, Interval, OrdF64};

/// Index of a node in the tree arena.
pub type NodeId = usize;

#[derive(Debug, Clone)]
struct Node {
    /// Inclusive leaf-coordinate range covered by this node.
    lo: u32,
    hi: u32,
    /// Bitstring identifier (root-to-node path).
    id: BitString,
    left: Option<NodeId>,
    right: Option<NodeId>,
    /// Canonical subset: indices of inserted intervals stored at this node.
    canonical: Vec<usize>,
}

/// A segment tree over a set of intervals.
#[derive(Debug, Clone)]
pub struct SegmentTree {
    /// Sorted distinct endpoints of the input intervals.
    endpoints: Vec<OrdF64>,
    nodes: Vec<Node>,
    root: NodeId,
    /// Number of inserted (stored) intervals.
    stored: usize,
}

impl SegmentTree {
    /// Builds the segment tree over the endpoints of `intervals` without
    /// storing the intervals themselves (canonical partitions can still be
    /// computed on demand).
    pub fn build(intervals: &[Interval]) -> Self {
        let mut endpoints: Vec<OrdF64> = Vec::with_capacity(intervals.len() * 2);
        for iv in intervals {
            endpoints.push(iv.lo_ord());
            endpoints.push(iv.hi_ord());
        }
        Self::from_endpoints(endpoints)
    }

    /// Builds the segment tree and inserts every interval into the canonical
    /// subsets of its canonical-partition nodes (Algorithm 2), enabling
    /// [`SegmentTree::stab`] queries.
    pub fn build_with_storage(intervals: &[Interval]) -> Self {
        let mut tree = Self::build(intervals);
        for (idx, iv) in intervals.iter().enumerate() {
            tree.insert(idx, *iv);
        }
        tree
    }

    /// Builds a segment tree from an explicit multiset of endpoint values.
    pub fn from_endpoints(mut endpoints: Vec<OrdF64>) -> Self {
        endpoints.sort_unstable();
        endpoints.dedup();
        let m = endpoints.len() as u32;
        // Leaf coordinates 0..=2m: even coordinates are open gaps, odd
        // coordinates are the point segments [p_j, p_j].
        let max_coord = 2 * m;
        let mut nodes = Vec::with_capacity((2 * (max_coord as usize + 1)).max(1));
        let root = build_node(&mut nodes, 0, max_coord, BitString::empty());
        SegmentTree {
            endpoints,
            nodes,
            root,
            stored: 0,
        }
    }

    /// Number of distinct endpoints.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// Number of leaves (elementary segments).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        2 * self.endpoints.len() + 1
    }

    /// Number of tree nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (number of edges on the longest root-to-leaf path).
    pub fn height(&self) -> u8 {
        self.nodes.iter().map(|n| n.id.len()).max().unwrap_or(0)
    }

    /// Number of intervals inserted with [`SegmentTree::insert`].
    #[inline]
    pub fn stored_intervals(&self) -> usize {
        self.stored
    }

    /// Inserts `interval` (tagged with the caller-chosen index `idx`) into the
    /// canonical subsets of its canonical-partition nodes (Algorithm 2).
    pub fn insert(&mut self, idx: usize, interval: Interval) {
        let (lo, hi) = match self.covered_coord_range(interval) {
            Some(r) => r,
            None => return,
        };
        self.insert_rec(self.root, lo, hi, idx);
        self.stored += 1;
    }

    fn insert_rec(&mut self, node: NodeId, lo: u32, hi: u32, idx: usize) {
        let (nlo, nhi, left, right) = {
            let n = &self.nodes[node];
            (n.lo, n.hi, n.left, n.right)
        };
        if lo <= nlo && nhi <= hi {
            self.nodes[node].canonical.push(idx);
            return;
        }
        if nhi < lo || hi < nlo {
            return;
        }
        if let Some(l) = left {
            self.insert_rec(l, lo, hi, idx);
        }
        if let Some(r) = right {
            self.insert_rec(r, lo, hi, idx);
        }
    }

    /// Reports the indices of all stored intervals containing the point `p`
    /// (Algorithm 3).  The result is sorted and deduplicated.
    pub fn stab(&self, p: f64) -> Vec<usize> {
        let coord = self.coord_of_point(p);
        let mut out = Vec::new();
        let mut node = self.root;
        loop {
            let n = &self.nodes[node];
            out.extend_from_slice(&n.canonical);
            match (n.left, n.right) {
                (Some(l), Some(r)) => {
                    node = if coord <= self.nodes[l].hi { l } else { r };
                }
                _ => break,
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The canonical partition `CP_I(x)` of Definition 3.1: the maximal nodes
    /// whose segments are contained in `x`, as bitstrings ordered from left to
    /// right.
    ///
    /// For intervals whose endpoints belong to the endpoint set of the tree
    /// (the only case exercised by the reduction) the segments of the returned
    /// nodes partition `x`.
    pub fn canonical_partition(&self, x: Interval) -> Vec<BitString> {
        let Some((lo, hi)) = self.covered_coord_range(x) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.cp_rec(self.root, lo, hi, &mut out);
        out
    }

    fn cp_rec(&self, node: NodeId, lo: u32, hi: u32, out: &mut Vec<BitString>) {
        let n = &self.nodes[node];
        if lo <= n.lo && n.hi <= hi {
            out.push(n.id);
            return;
        }
        if n.hi < lo || hi < n.lo {
            return;
        }
        if let Some(l) = n.left {
            self.cp_rec(l, lo, hi, out);
        }
        if let Some(r) = n.right {
            self.cp_rec(r, lo, hi, out);
        }
    }

    /// The leaf containing the point `p` (`leaf(p)` of Section 3).
    pub fn leaf_of_point(&self, p: f64) -> BitString {
        let coord = self.coord_of_point(p);
        let mut node = self.root;
        loop {
            let n = &self.nodes[node];
            match (n.left, n.right) {
                (Some(l), Some(r)) => {
                    node = if coord <= self.nodes[l].hi { l } else { r };
                }
                _ => return n.id,
            }
        }
    }

    /// The leaf containing the left endpoint of `x` (`leaf(x)` of Section 3).
    #[inline]
    pub fn leaf_of_interval(&self, x: Interval) -> BitString {
        self.leaf_of_point(x.lo())
    }

    /// Looks up a node by its bitstring identifier.
    pub fn node_by_id(&self, id: BitString) -> Option<NodeId> {
        let mut node = self.root;
        for i in 0..id.len() {
            let n = &self.nodes[node];
            let next = if id.bit(i) { n.right } else { n.left };
            node = next?;
        }
        Some(node)
    }

    /// Returns true if the segment of the node identified by `id` is
    /// contained in `x`.  Returns false for identifiers of non-existent nodes.
    pub fn node_segment_contained_in(&self, id: BitString, x: Interval) -> bool {
        let Some((lo, hi)) = self.covered_coord_range(x) else {
            return false;
        };
        match self.node_by_id(id) {
            Some(node) => {
                let n = &self.nodes[node];
                lo <= n.lo && n.hi <= hi
            }
            None => false,
        }
    }

    /// A human-readable description of the segment of a node, e.g. `"(1, 3]"`.
    /// Used when rendering Figure 3.
    pub fn describe_node(&self, id: BitString) -> Option<String> {
        let node = self.node_by_id(id)?;
        let n = &self.nodes[node];
        Some(self.describe_coord_range(n.lo, n.hi))
    }

    /// All node bitstrings in breadth-first order (used for diagnostics and
    /// for rendering the tree).
    pub fn node_ids(&self) -> Vec<BitString> {
        let mut ids: Vec<BitString> = self.nodes.iter().map(|n| n.id).collect();
        ids.sort_by_key(|b| (b.len(), b.bits()));
        ids
    }

    /// Total size of all canonical subsets (the `O(|I| log |I|)` storage of
    /// Property 3.2).
    pub fn canonical_storage(&self) -> usize {
        self.nodes.iter().map(|n| n.canonical.len()).sum()
    }

    // --- coordinate helpers -------------------------------------------------

    /// Leaf coordinate of a point: the elementary segment containing it.
    fn coord_of_point(&self, p: f64) -> u32 {
        let p = OrdF64::new(p);
        // Number of endpoints strictly smaller than p.
        let below = self.endpoints.partition_point(|&e| e < p) as u32;
        let is_endpoint =
            (below as usize) < self.endpoints.len() && self.endpoints[below as usize] == p;
        if is_endpoint {
            2 * below + 1
        } else {
            2 * below
        }
    }

    /// The range of leaf coordinates whose elementary segments are fully
    /// contained in the closed interval `x`, or `None` if there is none.
    fn covered_coord_range(&self, x: Interval) -> Option<(u32, u32)> {
        let m = self.endpoints.len() as u32;
        let lo = if x.lo() == f64::NEG_INFINITY {
            0
        } else {
            // Smallest endpoint >= x.lo determines the first fully covered leaf.
            let j = self.endpoints.partition_point(|&e| e < x.lo_ord()) as u32;
            if j >= m {
                return None;
            }
            2 * j + 1
        };
        let hi = if x.hi() == f64::INFINITY {
            2 * m
        } else {
            // Largest endpoint <= x.hi determines the last fully covered leaf.
            let j = self.endpoints.partition_point(|&e| e <= x.hi_ord()) as u32;
            if j == 0 {
                return None;
            }
            2 * (j - 1) + 1
        };
        if lo > hi {
            None
        } else {
            Some((lo, hi))
        }
    }

    fn describe_coord_range(&self, lo: u32, hi: u32) -> String {
        let left = if lo % 2 == 1 {
            format!("[{}", self.endpoints[(lo as usize - 1) / 2])
        } else if lo == 0 {
            "(-inf".to_string()
        } else {
            format!("({}", self.endpoints[(lo as usize) / 2 - 1])
        };
        let m = self.endpoints.len() as u32;
        let right = if hi % 2 == 1 {
            format!("{}]", self.endpoints[(hi as usize - 1) / 2])
        } else if hi == 2 * m {
            "+inf)".to_string()
        } else {
            format!("{})", self.endpoints[(hi as usize) / 2])
        };
        format!("{left}, {right}")
    }
}

/// Recursively builds a balanced binary tree over the inclusive coordinate
/// range `[lo, hi]`, returning the arena index of the subtree root.
fn build_node(nodes: &mut Vec<Node>, lo: u32, hi: u32, id: BitString) -> NodeId {
    let index = nodes.len();
    nodes.push(Node {
        lo,
        hi,
        id,
        left: None,
        right: None,
        canonical: Vec::new(),
    });
    if lo < hi {
        let mid = lo + (hi - lo) / 2;
        let left = build_node(nodes, lo, mid, id.child(false));
        let right = build_node(nodes, mid + 1, hi, id.child(true));
        nodes[index].left = Some(left);
        nodes[index].right = Some(right);
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn bs(text: &str) -> BitString {
        BitString::parse(text).unwrap()
    }

    /// The running example of Figure 3 / Figure 6: I = { [1,4], [3,4] }.
    fn figure3_tree() -> (SegmentTree, Interval, Interval) {
        let a = Interval::new(1.0, 4.0);
        let b = Interval::new(3.0, 4.0);
        (SegmentTree::build(&[a, b]), a, b)
    }

    #[test]
    fn figure3_structure() {
        let (tree, _, _) = figure3_tree();
        // Endpoints {1, 3, 4} → 7 elementary segments → 13 nodes.
        assert_eq!(tree.num_endpoints(), 3);
        assert_eq!(tree.num_leaves(), 7);
        assert_eq!(tree.num_nodes(), 13);
    }

    #[test]
    fn figure3_canonical_partitions() {
        // The paper states: [1,4] is stored at the nodes 001, 01 and 10;
        // [3,4] is stored at the nodes 011 and 10 (Figure 3 caption).
        let (tree, a, b) = figure3_tree();
        let cp_a: HashSet<BitString> = tree.canonical_partition(a).into_iter().collect();
        let cp_b: HashSet<BitString> = tree.canonical_partition(b).into_iter().collect();
        assert_eq!(cp_a, [bs("001"), bs("01"), bs("10")].into_iter().collect());
        assert_eq!(cp_b, [bs("011"), bs("10")].into_iter().collect());
    }

    #[test]
    fn canonical_partition_nodes_are_maximal_and_disjoint() {
        let intervals: Vec<Interval> = (0..20)
            .map(|i| Interval::new(i as f64, (i + 7) as f64 * 1.5))
            .collect();
        let tree = SegmentTree::build(&intervals);
        for iv in &intervals {
            let cp = tree.canonical_partition(*iv);
            assert!(!cp.is_empty());
            // Property 3.2(2): no node in CP is an ancestor of another.
            for (i, u) in cp.iter().enumerate() {
                for (j, v) in cp.iter().enumerate() {
                    if i != j {
                        assert!(!u.is_prefix_of(*v), "{u} is an ancestor of {v}");
                    }
                }
            }
            // Every CP node's segment is contained in the interval.
            for u in &cp {
                assert!(tree.node_segment_contained_in(*u, *iv));
            }
        }
    }

    #[test]
    fn canonical_partition_size_is_logarithmic() {
        let n = 512;
        let intervals: Vec<Interval> = (0..n)
            .map(|i| Interval::new(i as f64, (i + n / 3) as f64))
            .collect();
        let tree = SegmentTree::build(&intervals);
        let height = tree.height() as usize;
        for iv in &intervals {
            let cp = tree.canonical_partition(*iv);
            // At most ~2 nodes per level (proof of Property 3.2(3)).
            assert!(
                cp.len() <= 2 * height + 2,
                "CP too large: {} vs height {}",
                cp.len(),
                height
            );
        }
    }

    #[test]
    fn leaf_of_point_contains_the_point() {
        let intervals = vec![Interval::new(0.0, 10.0), Interval::new(5.0, 20.0)];
        let tree = SegmentTree::build(&intervals);
        // Points at endpoints map to point leaves; others to gap leaves.
        for p in [0.0, 2.5, 5.0, 10.0, 15.0, 20.0, 99.0, -3.0] {
            let leaf = tree.leaf_of_point(p);
            // The leaf must exist in the tree and every ancestor must be a prefix.
            assert!(tree.node_by_id(leaf).is_some());
        }
        // Distinct endpoints map to distinct leaves.
        assert_ne!(tree.leaf_of_point(0.0), tree.leaf_of_point(5.0));
        // A point strictly inside a gap maps to a different leaf than the endpoints.
        assert_ne!(tree.leaf_of_point(2.5), tree.leaf_of_point(0.0));
        assert_ne!(tree.leaf_of_point(2.5), tree.leaf_of_point(5.0));
    }

    #[test]
    fn intersection_iff_cp_node_is_ancestor_of_leaf() {
        // Lemma 4.1 specialised to two intervals: x and y intersect iff
        // CP(y) contains an ancestor of leaf(x.lo) or CP(x) contains an
        // ancestor of leaf(y.lo).
        let intervals: Vec<Interval> = vec![
            Interval::new(0.0, 4.0),
            Interval::new(2.0, 9.0),
            Interval::new(5.0, 6.0),
            Interval::new(10.0, 12.0),
            Interval::new(4.0, 5.0),
            Interval::point(6.0),
        ];
        let tree = SegmentTree::build(&intervals);
        for &x in &intervals {
            for &y in &intervals {
                let leaf_x = tree.leaf_of_interval(x);
                let leaf_y = tree.leaf_of_interval(y);
                let via_tree = tree
                    .canonical_partition(y)
                    .iter()
                    .any(|v| v.is_prefix_of(leaf_x))
                    || tree
                        .canonical_partition(x)
                        .iter()
                        .any(|v| v.is_prefix_of(leaf_y));
                assert_eq!(via_tree, x.intersects(y), "x={x:?} y={y:?}");
            }
        }
    }

    #[test]
    fn stabbing_query_reports_exactly_the_covering_intervals() {
        let intervals: Vec<Interval> = vec![
            Interval::new(0.0, 4.0),
            Interval::new(2.0, 9.0),
            Interval::new(5.0, 6.0),
            Interval::new(10.0, 12.0),
            Interval::point(6.0),
        ];
        let tree = SegmentTree::build_with_storage(&intervals);
        for p in [
            -1.0, 0.0, 1.0, 2.0, 3.5, 5.0, 6.0, 8.0, 9.5, 10.0, 11.0, 13.0,
        ] {
            let expected: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.stab(p), expected, "stabbing at {p}");
        }
    }

    #[test]
    fn canonical_storage_is_near_linear() {
        let n = 256;
        let intervals: Vec<Interval> = (0..n)
            .map(|i| Interval::new(i as f64 * 0.5, i as f64 * 0.5 + 40.0))
            .collect();
        let tree = SegmentTree::build_with_storage(&intervals);
        let bound = n * (2 * tree.height() as usize + 2);
        assert!(tree.canonical_storage() <= bound);
        assert_eq!(tree.stored_intervals(), n);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let tree = SegmentTree::build(&[]);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.leaf_of_point(42.0), BitString::empty());
        assert!(tree.canonical_partition(Interval::new(0.0, 1.0)).is_empty());
        // The unbounded interval covers the single leaf (the whole line).
        assert_eq!(
            tree.canonical_partition(Interval::all()),
            vec![BitString::empty()]
        );

        let tree = SegmentTree::build(&[Interval::point(7.0)]);
        assert_eq!(tree.num_endpoints(), 1);
        assert_eq!(tree.num_leaves(), 3);
        let cp = tree.canonical_partition(Interval::point(7.0));
        assert_eq!(cp.len(), 1);
    }

    #[test]
    fn describe_node_matches_figure3() {
        let (tree, _, _) = figure3_tree();
        assert_eq!(
            tree.describe_node(BitString::empty()).unwrap(),
            "(-inf, +inf)"
        );
        // Node "011" is the point segment [3,3] in Figure 3.
        assert_eq!(tree.describe_node(bs("011")).unwrap(), "[3, 3]");
        // Node "10" is (3, 4] in Figure 3.
        assert_eq!(tree.describe_node(bs("10")).unwrap(), "(3, 4]");
        assert!(tree.describe_node(bs("11111111")).is_none());
    }

    #[test]
    fn node_lookup_by_bitstring() {
        let (tree, _, _) = figure3_tree();
        for id in tree.node_ids() {
            let node = tree.node_by_id(id).unwrap();
            assert_eq!(tree.nodes[node].id, id);
        }
        assert!(tree.node_by_id(bs("000000000")).is_none());
    }

    #[test]
    fn height_is_logarithmic() {
        for n in [1usize, 2, 7, 64, 500] {
            let intervals: Vec<Interval> = (0..n)
                .map(|i| Interval::new(i as f64, i as f64 + 1.0))
                .collect();
            let tree = SegmentTree::build(&intervals);
            let leaves = tree.num_leaves() as f64;
            assert!((tree.height() as f64) <= leaves.log2().ceil() + 1.0);
        }
    }
}
