//! Interval primitives and segment trees for intersection-join evaluation.
//!
//! This crate provides the data-structure substrate of the paper
//! *"The Complexity of Boolean Conjunctive Queries with Intersection Joins"*
//! (PODS 2022):
//!
//! * [`Interval`] — closed intervals with totally ordered `f64` endpoints,
//! * [`BitString`] — compact identifiers for segment-tree nodes (the root is
//!   the empty string, `0`/`1` select the left/right child),
//! * [`SegmentTree`] — the segment tree of Section 3 with canonical
//!   partitions ([`SegmentTree::canonical_partition`]) and leaf lookup
//!   ([`SegmentTree::leaf_of_point`]),
//! * [`FlatSegmentTree`] — a static, pointer-free layout of the same tree
//!   (interned endpoint ranks, implicit-heap index arithmetic, CSR canonical
//!   subsets) for cache-friendly stabbing and overlap queries,
//! * [`IntervalTree`] — a centered interval tree, the classical index-based
//!   comparator used by the baselines,
//! * [`DyadicEmbedding`] — the dyadic embedding `F` of bitstrings into intervals used
//!   by the backward reduction (Section 5).
//!
//! # Example
//!
//! ```
//! use ij_segtree::{Interval, SegmentTree};
//!
//! // Figure 3 of the paper: I = { [1,4], [3,4] }.
//! let intervals = vec![Interval::new(1.0, 4.0), Interval::new(3.0, 4.0)];
//! let tree = SegmentTree::build(&intervals);
//! let cp = tree.canonical_partition(Interval::new(1.0, 4.0));
//! // The canonical partition consists of maximal nodes whose segments are
//! // contained in [1,4]; it has O(log |I|) nodes.
//! assert!(!cp.is_empty());
//! ```

mod bitstring;
mod dyadic;
mod flat;
mod interval;
mod intervaltree;
mod ordf64;
mod tree;

pub use bitstring::{BitString, Compositions, MAX_BITS};
pub use dyadic::{dyadic_interval, DyadicEmbedding, MAX_DEPTH as DYADIC_MAX_DEPTH};
pub use flat::FlatSegmentTree;
pub use interval::{Interval, IntervalError};
pub use intervaltree::IntervalTree;
pub use ordf64::OrdF64;
pub use tree::{NodeId, SegmentTree};
