//! Bitstring identifiers for segment-tree nodes.
//!
//! Every node of a segment tree is uniquely identified by the bitstring of
//! the path from the root: the root is the empty string, appending `0`
//! selects the left child and `1` the right child (Section 3).  The ancestor
//! relation corresponds exactly to the prefix relation on bitstrings
//! (Property 3.2(1)), which is what the forward reduction exploits to turn
//! intersection joins into equality joins on bitstring fragments.

use std::fmt;

/// Maximum supported bitstring length.
///
/// Segment trees over `n` intervals have depth `O(log n)`, so 63 bits is far
/// more than any in-memory workload requires.  Concatenations performed by
/// the reduction never exceed the depth of a single tree.
pub const MAX_BITS: u8 = 63;

/// A bitstring of length at most [`MAX_BITS`], stored most-significant-bit
/// first in the low `len` bits of a `u64`.
///
/// The empty bitstring denotes the root of a segment tree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitString {
    /// The bits, left-aligned at bit index `len - 1` (i.e. the first bit of
    /// the string is the most significant of the low `len` bits).
    bits: u64,
    /// Number of valid bits.
    len: u8,
}

impl BitString {
    /// The empty bitstring (the segment-tree root).
    #[inline]
    pub const fn empty() -> Self {
        BitString { bits: 0, len: 0 }
    }

    /// Creates a bitstring from the low `len` bits of `bits` (interpreted
    /// most-significant-first).
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_BITS` or if `bits` has bits set above `len`.
    #[inline]
    pub fn from_bits(bits: u64, len: u8) -> Self {
        assert!(len <= MAX_BITS, "bitstring too long");
        assert!(
            len == 64 || bits < (1u64 << len),
            "bits exceed declared length"
        );
        BitString { bits, len }
    }

    /// Parses a bitstring from a `0`/`1` text representation, e.g. `"010"`.
    /// The empty string parses to the empty bitstring.
    pub fn parse(text: &str) -> Option<Self> {
        if text.len() > MAX_BITS as usize {
            return None;
        }
        let mut bits = 0u64;
        for ch in text.chars() {
            bits <<= 1;
            match ch {
                '0' => {}
                '1' => bits |= 1,
                _ => return None,
            }
        }
        Some(BitString {
            bits,
            len: text.len() as u8,
        })
    }

    /// Number of bits.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the empty bitstring.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Raw bit value (low `len` bits).
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The bit at position `i` (0 = first/most significant position).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn bit(self, i: u8) -> bool {
        assert!(i < self.len, "bit index out of range");
        (self.bits >> (self.len - 1 - i)) & 1 == 1
    }

    /// Appends a single bit, producing the child node identifier.
    #[inline]
    pub fn child(self, right: bool) -> BitString {
        assert!(self.len < MAX_BITS, "bitstring too long");
        BitString {
            bits: (self.bits << 1) | (right as u64),
            len: self.len + 1,
        }
    }

    /// The parent node identifier (drops the last bit); `None` for the root.
    #[inline]
    pub fn parent(self) -> Option<BitString> {
        if self.len == 0 {
            None
        } else {
            Some(BitString {
                bits: self.bits >> 1,
                len: self.len - 1,
            })
        }
    }

    /// Returns true if `self` is a prefix of `other` (equivalently: the node
    /// `self` is an ancestor of `other` or equal to it, Property 3.2(1)).
    #[inline]
    pub fn is_prefix_of(self, other: BitString) -> bool {
        self.len <= other.len && (other.bits >> (other.len - self.len)) == self.bits
    }

    /// Returns true if `self` is a *strict* prefix of `other`.
    #[inline]
    pub fn is_strict_prefix_of(self, other: BitString) -> bool {
        self.len < other.len && self.is_prefix_of(other)
    }

    /// Concatenation `self ◦ other`.
    ///
    /// # Panics
    ///
    /// Panics if the combined length exceeds [`MAX_BITS`].
    #[inline]
    pub fn concat(self, other: BitString) -> BitString {
        assert!(self.len + other.len <= MAX_BITS, "concatenation too long");
        BitString {
            bits: (self.bits << other.len) | other.bits,
            len: self.len + other.len,
        }
    }

    /// Concatenation of a sequence of bitstrings.
    pub fn concat_all<I: IntoIterator<Item = BitString>>(parts: I) -> BitString {
        parts
            .into_iter()
            .fold(BitString::empty(), BitString::concat)
    }

    /// The prefix consisting of the first `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    #[inline]
    pub fn prefix(self, n: u8) -> BitString {
        assert!(n <= self.len, "prefix longer than bitstring");
        BitString {
            bits: self.bits >> (self.len - n),
            len: n,
        }
    }

    /// The suffix starting after the first `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    #[inline]
    pub fn suffix(self, n: u8) -> BitString {
        assert!(n <= self.len, "suffix offset longer than bitstring");
        let len = self.len - n;
        let mask = if len == 0 { 0 } else { (1u64 << len) - 1 };
        BitString {
            bits: self.bits & mask,
            len,
        }
    }

    /// Splits the bitstring into the prefix of length `n` and the remaining
    /// suffix.
    #[inline]
    pub fn split_at(self, n: u8) -> (BitString, BitString) {
        (self.prefix(n), self.suffix(n))
    }

    /// All ancestors of the node identified by this bitstring, *including*
    /// the node itself (the `anc(u)` of Section 3), ordered from the root
    /// down to the node.
    pub fn ancestors(self) -> Vec<BitString> {
        (0..=self.len).map(|n| self.prefix(n)).collect()
    }

    /// An iterator over all ways of writing this bitstring as a concatenation
    /// of `parts` (possibly empty) bitstrings — the set `𝔉(u, i)` used in the
    /// proof of Lemma 4.10.  The number of compositions of a string of length
    /// `ℓ` into `i` parts is `C(ℓ + i - 1, i - 1) = O(ℓ^{i-1})`.
    pub fn compositions(self, parts: usize) -> Compositions {
        Compositions::new(self, parts)
    }

    /// Number of compositions into `parts` parts (binomial `C(len+parts-1, parts-1)`).
    pub fn composition_count(self, parts: usize) -> u64 {
        if parts == 0 {
            return u64::from(self.len == 0);
        }
        binomial(self.len as u64 + parts as u64 - 1, parts as u64 - 1)
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k.min(n));
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in 0..self.len {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Iterator over the compositions of a bitstring into a fixed number of
/// (possibly empty) parts.
///
/// Produced by [`BitString::compositions`].
pub struct Compositions {
    source: BitString,
    /// Cut positions `0 <= c_1 <= c_2 <= ... <= c_{parts-1} <= len`.
    cuts: Vec<u8>,
    parts: usize,
    done: bool,
}

impl Compositions {
    fn new(source: BitString, parts: usize) -> Self {
        let done = parts == 0 && !source.is_empty();
        Compositions {
            source,
            cuts: vec![0; parts.saturating_sub(1)],
            parts,
            done,
        }
    }
}

impl Iterator for Compositions {
    type Item = Vec<BitString>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.parts == 0 {
            // Only the empty string decomposes into zero parts.
            self.done = true;
            return Some(Vec::new());
        }
        // Build the current composition from the cut positions.
        let mut parts = Vec::with_capacity(self.parts);
        let mut prev = 0u8;
        for &cut in &self.cuts {
            parts.push(self.source.prefix(cut).suffix(prev));
            prev = cut;
        }
        parts.push(self.source.suffix(prev));

        // Advance the cut vector (non-decreasing sequences over 0..=len).
        let len = self.source.len();
        let mut i = self.cuts.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.cuts[i] < len {
                self.cuts[i] += 1;
                let v = self.cuts[i];
                for j in i + 1..self.cuts.len() {
                    self.cuts[j] = v;
                }
                break;
            }
        }
        Some(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_text_round_trip() {
        let b = BitString::parse("0110").unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(format!("{b}"), "0110");
        assert_eq!(BitString::parse("").unwrap(), BitString::empty());
        assert_eq!(format!("{}", BitString::empty()), "ε");
        assert!(BitString::parse("01x").is_none());
    }

    #[test]
    fn child_and_parent_are_inverses() {
        let root = BitString::empty();
        let left = root.child(false);
        let lr = left.child(true);
        assert_eq!(format!("{lr}"), "01");
        assert_eq!(lr.parent(), Some(left));
        assert_eq!(left.parent(), Some(root));
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn prefix_relation_matches_ancestry() {
        let a = BitString::parse("01").unwrap();
        let b = BitString::parse("0110").unwrap();
        assert!(a.is_prefix_of(b));
        assert!(a.is_strict_prefix_of(b));
        assert!(a.is_prefix_of(a));
        assert!(!a.is_strict_prefix_of(a));
        assert!(!b.is_prefix_of(a));
        let c = BitString::parse("10").unwrap();
        assert!(!a.is_prefix_of(c));
        // The empty string is a prefix of everything.
        assert!(BitString::empty().is_prefix_of(c));
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = BitString::parse("011").unwrap();
        let b = BitString::parse("10").unwrap();
        let ab = a.concat(b);
        assert_eq!(format!("{ab}"), "01110");
        assert_eq!(ab.split_at(3), (a, b));
        assert_eq!(BitString::concat_all([a, BitString::empty(), b]), ab);
    }

    #[test]
    fn ancestors_are_all_prefixes() {
        let b = BitString::parse("101").unwrap();
        let anc = b.ancestors();
        assert_eq!(anc.len(), 4);
        assert_eq!(anc[0], BitString::empty());
        assert_eq!(anc[3], b);
        for a in &anc {
            assert!(a.is_prefix_of(b));
        }
    }

    #[test]
    fn bit_access() {
        let b = BitString::parse("101").unwrap();
        assert!(b.bit(0));
        assert!(!b.bit(1));
        assert!(b.bit(2));
    }

    #[test]
    fn compositions_enumerate_all_splits() {
        let b = BitString::parse("10").unwrap();
        let comps: Vec<Vec<BitString>> = b.compositions(2).collect();
        // ℓ = 2, i = 2 → C(3,1) = 3 compositions: (ε,10), (1,0), (10,ε).
        assert_eq!(comps.len(), 3);
        assert_eq!(comps.len() as u64, b.composition_count(2));
        for parts in &comps {
            assert_eq!(BitString::concat_all(parts.iter().copied()), b);
            assert_eq!(parts.len(), 2);
        }
        // All compositions are distinct.
        let mut seen = std::collections::HashSet::new();
        for parts in &comps {
            assert!(seen.insert(parts.clone()));
        }
    }

    #[test]
    fn compositions_into_three_parts() {
        let b = BitString::parse("0110").unwrap();
        let comps: Vec<Vec<BitString>> = b.compositions(3).collect();
        // C(4+2, 2) = 15.
        assert_eq!(comps.len(), 15);
        assert_eq!(b.composition_count(3), 15);
        for parts in &comps {
            assert_eq!(BitString::concat_all(parts.iter().copied()), b);
        }
    }

    #[test]
    fn compositions_of_empty_string() {
        let comps: Vec<Vec<BitString>> = BitString::empty().compositions(2).collect();
        assert_eq!(comps, vec![vec![BitString::empty(), BitString::empty()]]);
        let comps0: Vec<Vec<BitString>> = BitString::empty().compositions(0).collect();
        assert_eq!(comps0, vec![Vec::new()]);
        let none: Vec<Vec<BitString>> = BitString::parse("1").unwrap().compositions(0).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn single_part_composition_is_identity() {
        let b = BitString::parse("0101").unwrap();
        let comps: Vec<Vec<BitString>> = b.compositions(1).collect();
        assert_eq!(comps, vec![vec![b]]);
    }
}
