//! Dyadic embedding of bitstrings into intervals.
//!
//! The backward reduction (Section 5, Example 5.1) maps each bitstring `b`
//! to an interval `F(b)` such that two bitstrings are prefix-related if and
//! only if their images intersect (equivalently, one image contains the
//! other).  The paper uses the half-open dyadic intervals `F(ε) = [0,1)`,
//! `F(0) = [0,1/2)`, `F(1) = [1/2,1)`, and so on.
//!
//! This crate works with closed intervals throughout (Remark B.1), so we
//! realise the same combinatorics on an integer grid: with a fixed precision
//! of `depth` bits, the bitstring `b` of length `ℓ ≤ depth` maps to the
//! closed interval `[b·2^(depth-ℓ), (b+1)·2^(depth-ℓ) - 1]` (interpreted as
//! `f64` values, exact for `depth ≤ 52`).  Prefix-related bitstrings map to
//! nested intervals; unrelated bitstrings map to disjoint intervals.

use crate::{BitString, Interval};

/// Maximum precision for which the integer grid is exactly representable in
/// `f64`.
pub const MAX_DEPTH: u8 = 52;

/// A fixed-precision dyadic embedding `F` of bitstrings into closed intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyadicEmbedding {
    depth: u8,
}

impl DyadicEmbedding {
    /// Creates an embedding able to map bitstrings of length at most `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth > MAX_DEPTH`.
    pub fn new(depth: u8) -> Self {
        assert!(
            depth <= MAX_DEPTH,
            "dyadic embedding depth too large for exact f64 arithmetic"
        );
        DyadicEmbedding { depth }
    }

    /// The precision of the embedding.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Maps a bitstring to its closed dyadic interval.
    ///
    /// # Panics
    ///
    /// Panics if the bitstring is longer than the embedding depth.
    pub fn interval(&self, b: BitString) -> Interval {
        assert!(
            b.len() <= self.depth,
            "bitstring longer than embedding depth"
        );
        let shift = self.depth - b.len();
        let lo = (b.bits() << shift) as f64;
        let hi = (((b.bits() + 1) << shift) - 1) as f64;
        Interval::new(lo, hi)
    }
}

/// Convenience wrapper: maps `b` with an embedding of exactly `depth` bits.
pub fn dyadic_interval(b: BitString, depth: u8) -> Interval {
    DyadicEmbedding::new(depth).interval(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(text: &str) -> BitString {
        BitString::parse(text).unwrap()
    }

    #[test]
    fn root_maps_to_full_range() {
        let emb = DyadicEmbedding::new(4);
        assert_eq!(emb.interval(BitString::empty()), Interval::new(0.0, 15.0));
        assert_eq!(emb.interval(bs("0")), Interval::new(0.0, 7.0));
        assert_eq!(emb.interval(bs("1")), Interval::new(8.0, 15.0));
        assert_eq!(emb.interval(bs("00")), Interval::new(0.0, 3.0));
    }

    #[test]
    fn prefix_iff_containment_iff_intersection() {
        let emb = DyadicEmbedding::new(6);
        let strings: Vec<BitString> = [
            "", "0", "1", "01", "10", "010", "0101", "111111", "000000", "10110",
        ]
        .iter()
        .map(|s| bs(s))
        .collect();
        for &a in &strings {
            for &b in &strings {
                let ia = emb.interval(a);
                let ib = emb.interval(b);
                let prefix_related = a.is_prefix_of(b) || b.is_prefix_of(a);
                assert_eq!(ia.intersects(ib), prefix_related, "a={a} b={b}");
                if a.is_prefix_of(b) {
                    assert!(ia.contains(ib), "F({a}) should contain F({b})");
                }
            }
        }
    }

    #[test]
    fn max_depth_stays_exact() {
        let emb = DyadicEmbedding::new(MAX_DEPTH);
        let deep = BitString::from_bits((1u64 << 52) - 1, 52);
        let iv = emb.interval(deep);
        assert_eq!(iv.lo(), iv.hi());
        assert_eq!(iv.lo(), ((1u64 << 52) - 1) as f64);
    }

    #[test]
    #[should_panic(expected = "longer than embedding depth")]
    fn too_long_bitstrings_are_rejected() {
        let emb = DyadicEmbedding::new(3);
        let _ = emb.interval(bs("0101"));
    }
}
