//! A flat, pointer-free segment-tree layout for stabbing and overlap queries.
//!
//! [`SegmentTree`](crate::SegmentTree) is an arena of nodes with explicit
//! child links — convenient for the reduction (which needs bitstring node
//! identities), but every descent chases `Option<NodeId>` indirections and
//! every canonical subset is its own `Vec`.  [`FlatSegmentTree`] is the
//! query-side counterpart: endpoints are *interned* into dense ranks (the
//! sorted position of an endpoint is its id), the tree is an implicit binary
//! heap over those ranks (children of node `i` live at `2i + 1` / `2i + 2`,
//! no child pointers), and all canonical subsets share one CSR arena (an
//! offsets array into a single index slab).  A stabbing query is then a
//! root-to-leaf walk by pure index arithmetic over three flat arrays.
//!
//! The elementary-segment convention matches `SegmentTree`: with `m` distinct
//! endpoints `p_1 < ... < p_m`, leaf coordinate `2j + 1` is the point segment
//! `[p_{j+1}, p_{j+1}]` and even coordinates are the open gaps, so the leaves
//! partition the real line and closed-interval semantics are exact.

use crate::{Interval, OrdF64};

/// A static segment tree over a fixed set of intervals, laid out as flat
/// arrays for cache-friendly stabbing ([`FlatSegmentTree::stab`]) and overlap
/// ([`FlatSegmentTree::overlapping`]) queries.
///
/// Build once with [`FlatSegmentTree::build`]; the structure is immutable
/// afterwards.  Interval indices reported by queries refer to positions in
/// the input slice.
///
/// ```
/// use ij_segtree::{FlatSegmentTree, Interval};
///
/// let tree = FlatSegmentTree::build(&[
///     Interval::new(0.0, 4.0),
///     Interval::new(3.0, 9.0),
///     Interval::point(7.0),
/// ]);
/// assert_eq!(tree.stab(3.5), vec![0, 1]);
/// assert_eq!(tree.overlapping(Interval::new(6.0, 8.0)), vec![1, 2]);
/// assert!(!tree.intersects_any(Interval::new(10.0, 11.0)));
/// ```
#[derive(Debug, Clone)]
pub struct FlatSegmentTree {
    /// Sorted distinct endpoints; an endpoint's position is its interned id.
    endpoints: Box<[OrdF64]>,
    /// CSR offsets: the canonical subset of node `i` is
    /// `canonical[offsets[i]..offsets[i + 1]]`.
    offsets: Box<[u32]>,
    /// All canonical subsets, concatenated in node order.
    canonical: Box<[u32]>,
    /// The indexed intervals, in input order.
    intervals: Box<[Interval]>,
    /// Interval indices sorted by `(lo, index)` — drives overlap queries.
    by_lo: Box<[u32]>,
}

impl FlatSegmentTree {
    /// Builds the tree over `intervals` and stores each interval at its
    /// canonical-partition nodes (Algorithm 2 of the paper, two passes:
    /// count, then fill — no per-node allocation).
    pub fn build(intervals: &[Interval]) -> Self {
        let mut endpoints: Vec<OrdF64> = Vec::with_capacity(intervals.len() * 2);
        for iv in intervals {
            endpoints.push(iv.lo_ord());
            endpoints.push(iv.hi_ord());
        }
        endpoints.sort_unstable();
        endpoints.dedup();

        let max_coord = 2 * endpoints.len() as u32;
        let num_nodes = heap_size(max_coord + 1);

        // Pass 1: count how many intervals each node stores.
        let mut counts = vec![0u32; num_nodes];
        for iv in intervals {
            if let Some((lo, hi)) = covered_coord_range(&endpoints, *iv) {
                for_each_canonical_node(max_coord, lo, hi, |node| counts[node] += 1);
            }
        }

        // Prefix-sum into CSR offsets.
        let mut offsets = vec![0u32; num_nodes + 1];
        for (i, c) in counts.iter().enumerate() {
            offsets[i + 1] = offsets[i] + c;
        }

        // Pass 2: fill the shared slab, reusing `counts` as write cursors.
        let mut canonical = vec![0u32; offsets[num_nodes] as usize];
        counts.copy_from_slice(&offsets[..num_nodes]);
        for (idx, iv) in intervals.iter().enumerate() {
            if let Some((lo, hi)) = covered_coord_range(&endpoints, *iv) {
                for_each_canonical_node(max_coord, lo, hi, |node| {
                    canonical[counts[node] as usize] = idx as u32;
                    counts[node] += 1;
                });
            }
        }

        let mut by_lo: Vec<u32> = (0..intervals.len() as u32).collect();
        by_lo.sort_unstable_by_key(|&i| (intervals[i as usize].lo_ord(), i));

        FlatSegmentTree {
            endpoints: endpoints.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            canonical: canonical.into_boxed_slice(),
            intervals: intervals.to_vec().into_boxed_slice(),
            by_lo: by_lo.into_boxed_slice(),
        }
    }

    /// Number of indexed intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns true if no intervals are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The indexed interval at `idx` (input order).
    #[inline]
    pub fn interval(&self, idx: usize) -> Interval {
        self.intervals[idx]
    }

    /// Number of distinct (interned) endpoints.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// Total canonical storage (the `O(n log n)` bound of Property 3.2).
    #[inline]
    pub fn canonical_storage(&self) -> usize {
        self.canonical.len()
    }

    /// Indices of all intervals containing the point `p`, sorted.
    pub fn stab(&self, p: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_stabbed(p, |i| out.push(i));
        out.sort_unstable();
        out
    }

    /// Calls `f` once for every interval containing `p` (unordered).  The
    /// walk visits one node per level — `O(log n)` array reads plus one call
    /// per reported interval, with no allocation.
    pub fn for_each_stabbed(&self, p: f64, mut f: impl FnMut(usize)) {
        let coord = self.coord_of_point(p);
        let max_coord = 2 * self.endpoints.len() as u32;
        let (mut lo, mut hi) = (0u32, max_coord);
        let mut node = 0usize;
        loop {
            let (start, end) = (self.offsets[node], self.offsets[node + 1]);
            for &idx in &self.canonical[start as usize..end as usize] {
                f(idx as usize);
            }
            if lo == hi {
                return;
            }
            let mid = lo + (hi - lo) / 2;
            node = 2 * node
                + if coord <= mid {
                    hi = mid;
                    1
                } else {
                    lo = mid + 1;
                    2
                };
        }
    }

    /// Indices of all intervals intersecting the closed query interval `q`,
    /// sorted.  `O(log n + k)` for `k` reported intervals: an interval
    /// overlapping `q` either contains `q.lo` (found by the stabbing walk) or
    /// starts inside `(q.lo, q.hi]` (found by binary search on the
    /// left-endpoint order) — the two cases are disjoint, so no
    /// deduplication pass is needed.
    pub fn overlapping(&self, q: Interval) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_stabbed(q.lo(), |i| out.push(i));
        let (start, end) = self.started_within(q);
        out.extend(self.by_lo[start..end].iter().map(|&i| i as usize));
        out.sort_unstable();
        out
    }

    /// Returns true if any indexed interval intersects `q`, without
    /// materialising the matches.
    pub fn intersects_any(&self, q: Interval) -> bool {
        let (start, end) = self.started_within(q);
        if start < end {
            return true;
        }
        // Otherwise a match must contain q.lo: walk the stabbing path and
        // stop at the first non-empty canonical subset.
        let coord = self.coord_of_point(q.lo());
        let max_coord = 2 * self.endpoints.len() as u32;
        let (mut lo, mut hi) = (0u32, max_coord);
        let mut node = 0usize;
        loop {
            if self.offsets[node] < self.offsets[node + 1] {
                return true;
            }
            if lo == hi {
                return false;
            }
            let mid = lo + (hi - lo) / 2;
            node = 2 * node
                + if coord <= mid {
                    hi = mid;
                    1
                } else {
                    lo = mid + 1;
                    2
                };
        }
    }

    /// The `by_lo` range of intervals whose left endpoint lies in
    /// `(q.lo, q.hi]` — the overlap candidates not containing `q.lo`.
    fn started_within(&self, q: Interval) -> (usize, usize) {
        let start = self
            .by_lo
            .partition_point(|&i| self.intervals[i as usize].lo_ord() <= q.lo_ord());
        let end = self
            .by_lo
            .partition_point(|&i| self.intervals[i as usize].lo_ord() <= q.hi_ord());
        (start, end)
    }

    /// Leaf coordinate of a point: the elementary segment containing it
    /// (same convention as `SegmentTree`).
    fn coord_of_point(&self, p: f64) -> u32 {
        let p = OrdF64::new(p);
        let below = self.endpoints.partition_point(|&e| e < p) as u32;
        let is_endpoint =
            (below as usize) < self.endpoints.len() && self.endpoints[below as usize] == p;
        if is_endpoint {
            2 * below + 1
        } else {
            2 * below
        }
    }
}

/// Size of the implicit heap holding a balanced tree over `num_leaves`
/// elementary segments: the recursion `mid = lo + (hi - lo) / 2` reaches
/// depth `ceil(log2(num_leaves))`, so `2^(depth + 1) - 1` slots cover every
/// reachable node index (unreachable "hole" slots stay empty and are never
/// visited — descents are guided by the coordinate ranges).
fn heap_size(num_leaves: u32) -> usize {
    let depth = u32::BITS - num_leaves.max(1).next_power_of_two().leading_zeros() - 1;
    (1usize << (depth + 1)) - 1
}

/// Visits the canonical-partition nodes of the coordinate range `[lo, hi]`
/// in the implicit heap rooted at node 0 covering `[0, max_coord]`.
fn for_each_canonical_node(max_coord: u32, lo: u32, hi: u32, mut f: impl FnMut(usize)) {
    // The canonical partition has O(log n) nodes reached through O(log n)
    // boundary nodes; a small explicit stack avoids recursion.
    let mut stack: Vec<(usize, u32, u32)> = Vec::with_capacity(64);
    stack.push((0, 0, max_coord));
    while let Some((node, nlo, nhi)) = stack.pop() {
        if nhi < lo || hi < nlo {
            continue;
        }
        if lo <= nlo && nhi <= hi {
            f(node);
            continue;
        }
        let mid = nlo + (nhi - nlo) / 2;
        stack.push((2 * node + 2, mid + 1, nhi));
        stack.push((2 * node + 1, nlo, mid));
    }
}

/// The range of leaf coordinates fully contained in the closed interval `x`
/// (same logic as `SegmentTree::covered_coord_range`).
fn covered_coord_range(endpoints: &[OrdF64], x: Interval) -> Option<(u32, u32)> {
    let m = endpoints.len() as u32;
    let lo = if x.lo() == f64::NEG_INFINITY {
        0
    } else {
        let j = endpoints.partition_point(|&e| e < x.lo_ord()) as u32;
        if j >= m {
            return None;
        }
        2 * j + 1
    };
    let hi = if x.hi() == f64::INFINITY {
        2 * m
    } else {
        let j = endpoints.partition_point(|&e| e <= x.hi_ord()) as u32;
        if j == 0 {
            return None;
        }
        2 * (j - 1) + 1
    };
    if lo > hi {
        None
    } else {
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentTree;

    fn brute_stab(intervals: &[Interval], p: f64) -> Vec<usize> {
        intervals
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.contains_point(p))
            .map(|(i, _)| i)
            .collect()
    }

    fn brute_overlap(intervals: &[Interval], q: Interval) -> Vec<usize> {
        intervals
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.intersects(q))
            .map(|(i, _)| i)
            .collect()
    }

    fn probe_points(intervals: &[Interval]) -> Vec<f64> {
        let mut points = vec![-1e9, 0.0, 1e9];
        for iv in intervals {
            for e in [iv.lo(), iv.hi()] {
                points.push(e);
                points.push(e - 0.25);
                points.push(e + 0.25);
            }
        }
        points
    }

    #[test]
    fn stab_matches_brute_force_and_arena_tree() {
        let intervals = vec![
            Interval::new(0.0, 4.0),
            Interval::new(2.0, 9.0),
            Interval::new(5.0, 6.0),
            Interval::new(10.0, 12.0),
            Interval::point(6.0),
            Interval::new(6.0, 6.5),
        ];
        let flat = FlatSegmentTree::build(&intervals);
        let arena = SegmentTree::build_with_storage(&intervals);
        for p in probe_points(&intervals) {
            assert_eq!(flat.stab(p), brute_stab(&intervals, p), "stab at {p}");
            assert_eq!(flat.stab(p), arena.stab(p), "flat vs arena at {p}");
        }
    }

    #[test]
    fn overlapping_matches_brute_force() {
        let intervals = vec![
            Interval::new(0.0, 4.0),
            Interval::new(2.0, 9.0),
            Interval::new(5.0, 6.0),
            Interval::new(10.0, 12.0),
            Interval::point(6.0),
        ];
        let flat = FlatSegmentTree::build(&intervals);
        let queries = [
            Interval::new(-5.0, -1.0),
            Interval::new(-1.0, 0.0),
            Interval::new(3.0, 5.0),
            Interval::point(6.0),
            Interval::new(9.0, 10.0),
            Interval::new(12.0, 20.0),
            Interval::new(-100.0, 100.0),
            Interval::new(6.75, 9.5),
        ];
        for q in queries {
            assert_eq!(flat.overlapping(q), brute_overlap(&intervals, q), "{q}");
            assert_eq!(
                flat.intersects_any(q),
                !brute_overlap(&intervals, q).is_empty(),
                "{q}"
            );
        }
    }

    #[test]
    fn stabbed_intervals_are_reported_exactly_once() {
        // Canonical-partition nodes are pairwise incomparable, so a
        // root-to-leaf walk meets each interval at most once — the reporting
        // loop relies on this to skip deduplication.
        let intervals: Vec<Interval> = (0..40)
            .map(|i| Interval::new((i % 7) as f64, (i % 7 + i % 5 + 1) as f64))
            .collect();
        let flat = FlatSegmentTree::build(&intervals);
        for p in probe_points(&intervals) {
            let mut seen = vec![0u32; intervals.len()];
            flat.for_each_stabbed(p, |i| seen[i] += 1);
            assert!(seen.iter().all(|&c| c <= 1), "duplicate report at {p}");
        }
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty = FlatSegmentTree::build(&[]);
        assert!(empty.is_empty());
        assert!(empty.stab(3.0).is_empty());
        assert!(empty.overlapping(Interval::new(0.0, 1.0)).is_empty());
        assert!(!empty.intersects_any(Interval::new(0.0, 1.0)));

        let one = FlatSegmentTree::build(&[Interval::point(7.0)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.stab(7.0), vec![0]);
        assert!(one.stab(6.9999).is_empty());
        assert_eq!(one.overlapping(Interval::new(0.0, 7.0)), vec![0]);
        assert!(one.overlapping(Interval::new(7.1, 8.0)).is_empty());
    }

    #[test]
    fn duplicate_intervals_and_shared_endpoints() {
        let intervals = vec![
            Interval::new(1.0, 3.0),
            Interval::new(1.0, 3.0),
            Interval::new(3.0, 5.0),
            Interval::point(3.0),
            Interval::point(3.0),
        ];
        let flat = FlatSegmentTree::build(&intervals);
        assert_eq!(flat.stab(3.0), vec![0, 1, 2, 3, 4]);
        assert_eq!(flat.stab(2.0), vec![0, 1]);
        assert_eq!(flat.overlapping(Interval::point(3.0)), vec![0, 1, 2, 3, 4]);
        // Interning: the five intervals share only three distinct endpoints.
        assert_eq!(flat.num_endpoints(), 3);
    }

    #[test]
    fn randomised_agreement_with_arena_tree() {
        // Deterministic xorshift so the test needs no RNG dependency.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for n in [1usize, 2, 3, 17, 64, 257] {
            let intervals: Vec<Interval> = (0..n)
                .map(|_| {
                    let lo = next();
                    Interval::new(lo, lo + next() / 4.0)
                })
                .collect();
            let flat = FlatSegmentTree::build(&intervals);
            let arena = SegmentTree::build_with_storage(&intervals);
            for _ in 0..50 {
                let p = next();
                assert_eq!(flat.stab(p), arena.stab(p), "n={n} p={p}");
                let q_lo = next();
                let q = Interval::new(q_lo, q_lo + next() / 2.0);
                assert_eq!(flat.overlapping(q), brute_overlap(&intervals, q));
            }
        }
    }

    #[test]
    fn canonical_storage_is_near_linear() {
        let n = 256usize;
        let intervals: Vec<Interval> = (0..n)
            .map(|i| Interval::new(i as f64 * 0.5, i as f64 * 0.5 + 40.0))
            .collect();
        let flat = FlatSegmentTree::build(&intervals);
        let arena = SegmentTree::build_with_storage(&intervals);
        // The implicit heap realises the same balanced shape as the arena
        // tree, so the canonical storage matches exactly.
        assert_eq!(flat.canonical_storage(), arena.canonical_storage());
    }

    #[test]
    fn heap_size_covers_all_reachable_nodes() {
        for num_leaves in 1u32..200 {
            let size = heap_size(num_leaves);
            let mut max_idx = 0usize;
            for_each_canonical_node(num_leaves - 1, 0, num_leaves - 1, |_| {});
            // Walk to every leaf and record the deepest index touched.
            for coord in 0..num_leaves {
                let (mut lo, mut hi) = (0u32, num_leaves - 1);
                let mut node = 0usize;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    node = 2 * node
                        + if coord <= mid {
                            hi = mid;
                            1
                        } else {
                            lo = mid + 1;
                            2
                        };
                }
                max_idx = max_idx.max(node);
            }
            assert!(
                max_idx < size,
                "leaves={num_leaves} idx={max_idx} size={size}"
            );
        }
    }
}
