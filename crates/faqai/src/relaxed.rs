//! Relaxed tree decompositions and relaxed widths (Appendix F).
//!
//! In an FAQ-AI conjunct the scalar endpoint variables of different atoms are
//! pairwise disjoint, so a tree decomposition boils down to a partition of
//! the *atoms* into bags arranged in a tree.  The decomposition is *relaxed*
//! when every additive inequality has its two atoms either in the same bag or
//! in two adjacent bags \[2\].  Because the atoms of a bag share no variables,
//! the fractional edge cover number of the bag equals the number of atoms in
//! it, so
//!
//! ```text
//! fhtw_ℓ(conjunct) = min over relaxed decompositions of (max bag size)
//! ```
//!
//! and, for the modular polymatroid `h(S) = |S| / arity` the paper uses in
//! Appendix F, the same value lower-bounds `subw_ℓ`, hence
//! `subw_ℓ = fhtw_ℓ` for every conjunct analysed in the paper.
//!
//! FAQ-AI's runtime carries an extra `log^{max(k-1,1)} N` factor, where `k`
//! is the number of inequalities whose variables straddle two adjacent bags
//! of an optimal relaxed decomposition; the optimiser below therefore
//! minimises the pair `(width, crossing inequalities)` lexicographically.
//!
//! This module reproduces the analytic FAQ-AI column of Table 1 and the
//! partition table of Table 3 (the proof that the 4-clique conjunct admits no
//! relaxed decomposition with two relations per bag).

use crate::conjunct::{FaqAiConjunct, Inequality};

/// A relaxed tree decomposition of an FAQ-AI conjunct: a partition of the
/// atom indices into bags plus a tree over the bags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaxedDecomposition {
    /// The bags: disjoint, covering sets of atom indices.
    pub bags: Vec<Vec<usize>>,
    /// Edges of the tree over bag indices (empty for a single bag).
    pub tree_edges: Vec<(usize, usize)>,
    /// The width: the maximum number of atoms in a bag.  Because atoms of an
    /// FAQ-AI conjunct share no variables this equals the maximum fractional
    /// edge cover number over the bags.
    pub width: usize,
    /// Number of inequalities whose two atoms lie in different bags.
    pub crossing_inequalities: usize,
}

impl RelaxedDecomposition {
    /// The `log` exponent FAQ-AI pays for this decomposition:
    /// `max(k − 1, 1)` where `k` is the number of crossing inequalities
    /// (Theorem 3.5 of \[2\], as used in Appendix F).
    pub fn log_exponent(&self) -> usize {
        self.crossing_inequalities.saturating_sub(1).max(1)
    }
}

/// The relaxed-width analysis of one conjunct.
#[derive(Debug, Clone)]
pub struct ConjunctAnalysis {
    /// The conjunct's choice function, copied from [`FaqAiConjunct::choice`].
    pub choice: Vec<(String, usize)>,
    /// An optimal relaxed decomposition (minimum width, then minimum number
    /// of crossing inequalities).
    pub decomposition: RelaxedDecomposition,
}

/// The relaxed-width analysis of a whole FAQ-AI disjunction: the paper's
/// "FAQ-AI approach" column of Table 1.
#[derive(Debug, Clone)]
pub struct FaqAiAnalysis {
    /// Per-conjunct analyses.
    pub conjuncts: Vec<ConjunctAnalysis>,
    /// The relaxed fractional hypertree width of the disjunction: the
    /// maximum width over the conjuncts (the disjunction is only as fast as
    /// its slowest disjunct).
    pub width: usize,
    /// The largest `log` exponent among conjuncts of maximum width.
    pub log_exponent: usize,
}

impl FaqAiAnalysis {
    /// A short rendering such as `O(N^2 log^3 N)`.
    pub fn runtime(&self) -> String {
        format!("O(N^{} log^{} N)", self.width, self.log_exponent)
    }
}

/// Computes an optimal relaxed tree decomposition of a conjunct by exhaustive
/// search over set partitions of the atoms.
///
/// A partition of the atoms into bags admits *some* tree in which every
/// crossing inequality connects adjacent bags if and only if the graph of
/// bag pairs that must be adjacent is a forest (a forest always extends to a
/// spanning tree; a cycle can never be embedded in a tree).  The number of
/// crossing inequalities does not depend on which extension is chosen, so the
/// search only ranges over set partitions — exponential in the number of
/// atoms only, and instantaneous for the paper's queries (≤ 6 atoms).
pub fn optimal_relaxed_decomposition(conjunct: &FaqAiConjunct) -> RelaxedDecomposition {
    let n = conjunct.num_atoms;
    assert!(n >= 1, "a conjunct needs at least one atom");
    let cross: Vec<&Inequality> = conjunct.cross_atom_inequalities();

    let mut best: Option<RelaxedDecomposition> = None;
    for bags in set_partitions(n) {
        // Bag index of every atom.
        let mut bag_of = vec![usize::MAX; n];
        for (b, bag) in bags.iter().enumerate() {
            for &a in bag {
                bag_of[a] = b;
            }
        }
        let width = bags.iter().map(Vec::len).max().unwrap_or(0);
        if let Some(b) = &best {
            if width > b.width {
                continue;
            }
        }

        // Bag pairs forced adjacent by a crossing inequality, plus the number
        // of crossing inequalities (a property of the partition alone).
        let mut required: Vec<(usize, usize)> = Vec::new();
        let mut crossing = 0usize;
        for ineq in &cross {
            let (a, b) = ineq.atoms();
            let (ba, bb) = (bag_of[a], bag_of[b]);
            if ba == bb {
                continue;
            }
            crossing += 1;
            let pair = (ba.min(bb), ba.max(bb));
            if !required.contains(&pair) {
                required.push(pair);
            }
        }

        // The required adjacencies must form a forest.
        let mut dsu = DisjointSets::new(bags.len());
        let mut is_forest = true;
        for &(x, y) in &required {
            if !dsu.union(x, y) {
                is_forest = false;
                break;
            }
        }
        if !is_forest {
            continue;
        }
        // Extend the forest to a spanning tree by linking the remaining
        // components in index order.
        let mut tree_edges = required.clone();
        for b in 1..bags.len() {
            if dsu.union(0, b) {
                tree_edges.push((0, b));
            }
        }

        let candidate = RelaxedDecomposition {
            bags: bags.clone(),
            tree_edges,
            width,
            crossing_inequalities: crossing,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                (candidate.width, candidate.crossing_inequalities)
                    < (b.width, b.crossing_inequalities)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("the single-bag decomposition is always relaxed-valid")
}

/// A minimal union-find over `0..n`, used to check that the forced bag
/// adjacencies form a forest.
struct DisjointSets {
    parent: Vec<usize>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Unions the two sets; returns false if they were already the same set
    /// (i.e. adding the edge would close a cycle).
    fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        self.parent[rx] = ry;
        true
    }
}

/// Analyses every conjunct of an FAQ-AI disjunction and aggregates the
/// relaxed width and log exponent of the whole disjunction.
pub fn analyze_disjunction(conjuncts: &[FaqAiConjunct]) -> FaqAiAnalysis {
    let analyses: Vec<ConjunctAnalysis> = conjuncts
        .iter()
        .map(|c| ConjunctAnalysis {
            choice: c.choice.clone(),
            decomposition: optimal_relaxed_decomposition(c),
        })
        .collect();
    let width = analyses
        .iter()
        .map(|a| a.decomposition.width)
        .max()
        .unwrap_or(0);
    let log_exponent = analyses
        .iter()
        .filter(|a| a.decomposition.width == width)
        .map(|a| a.decomposition.log_exponent())
        .max()
        .unwrap_or(1);
    FaqAiAnalysis {
        conjuncts: analyses,
        width,
        log_exponent,
    }
}

/// One row of Table 3: a partition of the six 4-clique atoms into three pairs
/// together with three inequalities connecting every two parts (the witness
/// that no tree over the three parts keeps all inequalities between adjacent
/// bags).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The partition into three bags of two atom indices each.
    pub partition: [[usize; 2]; 3],
    /// For every pair of bags, one inequality connecting them
    /// (bag pair `(0,1)`, `(0,2)`, `(1,2)` in order).
    pub witnesses: [Inequality; 3],
}

/// Reproduces Table 3: for the given conjunct (the paper uses the 4-clique
/// conjunct with `V_A = R`, `V_B = U`, `V_C = S`, `V_D = T`), enumerate every
/// partition of the atoms into bags of exactly two atoms and exhibit, for
/// each, three inequalities forming a triangle among the three bags.
///
/// Returns `None` if some partition has no such triangle (i.e. if a relaxed
/// decomposition with two atoms per bag exists, contradicting the paper).
pub fn table3(conjunct: &FaqAiConjunct) -> Option<Vec<Table3Row>> {
    let n = conjunct.num_atoms;
    if n != 6 {
        return None;
    }
    let cross = conjunct.cross_atom_inequalities();
    let mut rows = Vec::new();
    for bags in partitions_into_pairs(n) {
        let bag_of = |atom: usize| bags.iter().position(|b| b.contains(&atom)).unwrap();
        // For every pair of bags, find one inequality connecting them.
        let mut witnesses: Vec<Inequality> = Vec::with_capacity(3);
        for (x, y) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let found = cross.iter().find(|i| {
                let (a, b) = i.atoms();
                let (ba, bb) = (bag_of(a), bag_of(b));
                (ba == x && bb == y) || (ba == y && bb == x)
            });
            match found {
                Some(i) => witnesses.push((*i).clone()),
                None => return None,
            }
        }
        rows.push(Table3Row {
            partition: [
                [bags[0][0], bags[0][1]],
                [bags[1][0], bags[1][1]],
                [bags[2][0], bags[2][1]],
            ],
            witnesses: [
                witnesses[0].clone(),
                witnesses[1].clone(),
                witnesses[2].clone(),
            ],
        });
    }
    Some(rows)
}

/// All set partitions of `{0, …, n-1}`, each as a list of sorted blocks in
/// order of their smallest element (restricted-growth-string enumeration).
pub fn set_partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    let mut out = Vec::new();
    let mut assignment = vec![0usize; n];
    fn rec(i: usize, max_used: usize, assignment: &mut Vec<usize>, out: &mut Vec<Vec<Vec<usize>>>) {
        let n = assignment.len();
        if i == n {
            let blocks = max_used + 1;
            let mut bags: Vec<Vec<usize>> = vec![Vec::new(); blocks];
            for (atom, &b) in assignment.iter().enumerate() {
                bags[b].push(atom);
            }
            out.push(bags);
            return;
        }
        for b in 0..=max_used + 1 {
            assignment[i] = b;
            rec(i + 1, max_used.max(b), assignment, out);
        }
    }
    if n == 0 {
        return vec![vec![]];
    }
    assignment[0] = 0;
    rec(1, 0, &mut assignment, &mut out);
    out
}

/// All partitions of `{0, …, n-1}` (n even) into unordered pairs.
pub fn partitions_into_pairs(n: usize) -> Vec<Vec<[usize; 2]>> {
    fn rec(remaining: &[usize], current: &mut Vec<[usize; 2]>, out: &mut Vec<Vec<[usize; 2]>>) {
        if remaining.is_empty() {
            out.push(current.clone());
            return;
        }
        let first = remaining[0];
        for i in 1..remaining.len() {
            let partner = remaining[i];
            let rest: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&x| x != first && x != partner)
                .collect();
            current.push([first, partner]);
            rec(&rest, current, out);
            current.pop();
        }
    }
    assert!(
        n.is_multiple_of(2),
        "pair partitions need an even number of elements"
    );
    let mut out = Vec::new();
    rec(&(0..n).collect::<Vec<usize>>(), &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conjunct::faqai_disjunction;
    use ij_relation::Query;

    fn triangle() -> Query {
        Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap()
    }

    fn lw4() -> Query {
        Query::parse("R([A],[B],[C]) & S([B],[C],[D]) & T([C],[D],[A]) & U([D],[A],[B])").unwrap()
    }

    fn four_clique() -> Query {
        Query::parse("R([A],[B]) & S([A],[C]) & T([A],[D]) & U([B],[C]) & V([B],[D]) & W([C],[D])")
            .unwrap()
    }

    #[test]
    fn set_partitions_have_bell_number_counts() {
        assert_eq!(set_partitions(1).len(), 1);
        assert_eq!(set_partitions(2).len(), 2);
        assert_eq!(set_partitions(3).len(), 5);
        assert_eq!(set_partitions(4).len(), 15);
        assert_eq!(set_partitions(6).len(), 203);
    }

    #[test]
    fn decomposition_trees_span_every_bag() {
        // The constructed tree of an optimal decomposition has exactly
        // `bags − 1` edges and every bag is reachable (it is a tree).
        let q = four_clique();
        for c in faqai_disjunction(&q).unwrap().iter().take(5) {
            let d = optimal_relaxed_decomposition(c);
            assert_eq!(d.tree_edges.len(), d.bags.len().saturating_sub(1));
            let mut dsu = DisjointSets::new(d.bags.len());
            for &(x, y) in &d.tree_edges {
                assert!(dsu.union(x, y), "the tree edges contain a cycle");
            }
        }
    }

    #[test]
    fn pair_partition_counts_are_double_factorials() {
        assert_eq!(partitions_into_pairs(2).len(), 1);
        assert_eq!(partitions_into_pairs(4).len(), 3);
        assert_eq!(partitions_into_pairs(6).len(), 15);
    }

    #[test]
    fn triangle_relaxed_width_is_two_with_log_cubed() {
        // Appendix F.1: fhtw_ℓ = subw_ℓ = 2 and k = 4 crossing inequalities,
        // giving O(N^2 log^3 N).
        let analysis = analyze_disjunction(&faqai_disjunction(&triangle()).unwrap());
        assert_eq!(analysis.width, 2);
        assert_eq!(analysis.log_exponent, 3);
        assert_eq!(analysis.runtime(), "O(N^2 log^3 N)");
        for c in &analysis.conjuncts {
            assert_eq!(c.decomposition.width, 2);
            assert_eq!(c.decomposition.crossing_inequalities, 4);
            assert_eq!(c.decomposition.bags.len(), 2);
        }
    }

    #[test]
    fn lw4_relaxed_width_is_two_with_log_ninth() {
        // Appendix F.2.1: fhtw_ℓ = subw_ℓ = 2; the conjunct analysed in the
        // paper has k = 10 crossing inequalities, giving O(N^2 log^9 N).
        let analysis = analyze_disjunction(&faqai_disjunction(&lw4()).unwrap());
        assert_eq!(analysis.width, 2);
        assert!(
            analysis.log_exponent >= 9,
            "log exponent {}",
            analysis.log_exponent
        );
        // Every conjunct needs at least two relations in one bag.
        for c in &analysis.conjuncts {
            assert_eq!(c.decomposition.width, 2);
        }
    }

    #[test]
    fn four_clique_relaxed_width_is_three() {
        // Appendix F.3.1: fhtw_ℓ = subw_ℓ = 3 and the analysed conjunct has
        // k = 6 crossing inequalities, giving O(N^3 log^5 N).
        let analysis = analyze_disjunction(&faqai_disjunction(&four_clique()).unwrap());
        assert_eq!(analysis.width, 3);
        assert!(analysis.log_exponent >= 5);
    }

    #[test]
    fn table3_exhibits_a_triangle_for_every_pair_partition() {
        // The paper's Table 3 uses the conjunct with V_A = R, V_B = U,
        // V_C = S, V_D = T (atom indices 0, 3, 1, 2).
        let conjuncts = faqai_disjunction(&four_clique()).unwrap();
        let target = conjuncts
            .iter()
            .find(|c| {
                c.choice
                    == vec![
                        ("A".to_string(), 0),
                        ("B".to_string(), 3),
                        ("C".to_string(), 1),
                        ("D".to_string(), 2),
                    ]
            })
            .expect("the Table 3 conjunct exists");
        let rows = table3(target).expect("every pair partition has a triangle of inequalities");
        assert_eq!(rows.len(), 15);
        for row in &rows {
            // The three witnesses connect three distinct bag pairs.
            for w in &row.witnesses {
                assert!(!w.is_intra_atom());
            }
        }
    }

    #[test]
    fn single_atom_conjunct_gets_the_trivial_decomposition() {
        let q = Query::parse("R([A],[B])").unwrap();
        let conjuncts = faqai_disjunction(&q).unwrap();
        let d = optimal_relaxed_decomposition(&conjuncts[0]);
        assert_eq!(d.width, 1);
        assert_eq!(d.bags, vec![vec![0]]);
        assert!(d.tree_edges.is_empty());
        assert_eq!(d.log_exponent(), 1);
    }

    #[test]
    fn acyclic_ij_queries_get_width_one_relaxed_decompositions() {
        // A path query: every inequality connects adjacent atoms, so bags of
        // one atom each arranged on a path are relaxed-valid.
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([C],[D])").unwrap();
        let analysis = analyze_disjunction(&faqai_disjunction(&q).unwrap());
        assert_eq!(analysis.width, 1);
    }
}
