//! The inequality-join reformulation of an intersection-join query
//! (Appendix F.1, equations (15)–(17)).
//!
//! An intersection predicate over the intervals `{x_1, …, x_k}` holds exactly
//! when some `x_i` has the maximum left endpoint and that left endpoint lies
//! inside every other interval:
//!
//! ```text
//! ⋂_i x_i ≠ ∅   ≡   ⋁_i ⋀_{j≠i}  x_j.l ≤ x_i.l ≤ x_j.r
//! ```
//!
//! Lifting this to a Boolean IJ query replaces every interval variable `[X]`
//! by the scalar endpoint variables `X.l(R)` / `X.r(R)` of each atom `R`
//! containing `[X]`, and turns the query into a disjunction of conjuncts: one
//! conjunct per *choice function* that picks, for every interval variable,
//! the atom whose left endpoint is largest.  Each conjunct is a Functional
//! Aggregate Query with Additive Inequalities (FAQ-AI) \[2\]; this module
//! materialises exactly those conjuncts so that the relaxed-width analysis
//! (module [`crate::relaxed`]) and the inequality-join evaluator (module
//! [`crate::evaluate`]) can reproduce the paper's comparator column of
//! Table 1.

use ij_hypergraph::VarKind;
use ij_relation::Query;
use std::fmt;

/// Which endpoint of an interval a scalar variable denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// The left endpoint `X.l(R)`.
    Left,
    /// The right endpoint `X.r(R)`.
    Right,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Left => write!(f, "l"),
            Endpoint::Right => write!(f, "r"),
        }
    }
}

/// A scalar endpoint variable `X.l(R)` or `X.r(R)`: the left or right
/// endpoint of the `[X]`-interval carried by the atom at index `atom`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScalarVar {
    /// The interval variable name (`X`).
    pub var: String,
    /// Index of the atom (in [`Query::atoms`] order) whose `[X]`-column the
    /// scalar refers to.
    pub atom: usize,
    /// Left or right endpoint.
    pub end: Endpoint,
}

impl fmt::Display for ScalarVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}(#{})", self.var, self.end, self.atom)
    }
}

/// One additive inequality `lhs ≤ rhs` between two scalar endpoint variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inequality {
    /// The smaller side.
    pub lhs: ScalarVar,
    /// The larger side.
    pub rhs: ScalarVar,
}

impl Inequality {
    /// The two atoms the inequality connects (its "relaxed hyperedge").
    pub fn atoms(&self) -> (usize, usize) {
        (self.lhs.atom, self.rhs.atom)
    }

    /// True if both endpoints live in the same atom (the inequality is then a
    /// per-tuple filter rather than a join condition).
    pub fn is_intra_atom(&self) -> bool {
        self.lhs.atom == self.rhs.atom
    }
}

impl fmt::Display for Inequality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ≤ {}", self.lhs, self.rhs)
    }
}

/// One conjunct of the FAQ-AI disjunction: the original atoms (now carrying
/// scalar endpoint columns) plus the additive inequalities induced by one
/// choice function.
#[derive(Debug, Clone)]
pub struct FaqAiConjunct {
    /// For every interval variable (in [`Query::interval_variables`] order):
    /// the atom index chosen as the "maximum left endpoint" witness `V_X`.
    pub choice: Vec<(String, usize)>,
    /// The additive inequalities of the conjunct.
    pub inequalities: Vec<Inequality>,
    /// Number of atoms of the underlying query.
    pub num_atoms: usize,
}

impl FaqAiConjunct {
    /// The inequalities that connect two *different* atoms — the relaxed
    /// hyperedges that constrain the relaxed tree decompositions of
    /// Appendix F.
    pub fn cross_atom_inequalities(&self) -> Vec<&Inequality> {
        self.inequalities
            .iter()
            .filter(|i| !i.is_intra_atom())
            .collect()
    }

    /// The pairs of distinct atoms connected by at least one inequality
    /// (deduplicated, each pair ordered `(min, max)`).
    pub fn connected_atom_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = self
            .cross_atom_inequalities()
            .iter()
            .map(|i| {
                let (a, b) = i.atoms();
                (a.min(b), a.max(b))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

impl fmt::Display for FaqAiConjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let choices: Vec<String> = self
            .choice
            .iter()
            .map(|(v, a)| format!("V_{v}=#{a}"))
            .collect();
        let ineqs: Vec<String> = self.inequalities.iter().map(|i| i.to_string()).collect();
        write!(f, "[{}] {}", choices.join(", "), ineqs.join(" ∧ "))
    }
}

/// Errors raised when building the FAQ-AI reformulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaqAiError {
    /// The query contains point variables; the comparator only covers pure IJ
    /// queries (the paper's Appendix F instances are all pure IJ).
    NotAnIjQuery,
    /// An interval variable repeats within one atom.
    RepeatedIntervalVariable {
        /// The atom's relation name.
        relation: String,
        /// The repeated interval variable.
        variable: String,
    },
    /// A relation referenced by the query is missing from the database.
    MissingRelation(String),
    /// A value bound to an interval variable is not an interval.
    NotAnInterval {
        /// The atom's relation name.
        relation: String,
        /// The offending column index.
        column: usize,
    },
}

impl fmt::Display for FaqAiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaqAiError::NotAnIjQuery => {
                write!(
                    f,
                    "the FAQ-AI comparator only supports pure intersection-join queries"
                )
            }
            FaqAiError::RepeatedIntervalVariable { relation, variable } => {
                write!(
                    f,
                    "interval variable `{variable}` repeated in atom `{relation}`"
                )
            }
            FaqAiError::MissingRelation(r) => write!(f, "relation `{r}` missing from database"),
            FaqAiError::NotAnInterval { relation, column } => {
                write!(
                    f,
                    "relation `{relation}` column {column} holds a non-interval value"
                )
            }
        }
    }
}

impl std::error::Error for FaqAiError {}

/// The atoms containing each interval variable, in query order: the map
/// `F(X)` of Appendix F.1.
pub fn containing_atoms(q: &Query) -> Vec<(String, Vec<usize>)> {
    q.interval_variables()
        .into_iter()
        .map(|v| {
            let atoms: Vec<usize> = q
                .atoms()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.vars.contains(&v))
                .map(|(i, _)| i)
                .collect();
            (v, atoms)
        })
        .collect()
}

/// Validates that `q` is a pure IJ query without repeated interval variables
/// inside an atom.
pub fn validate_ij_query(q: &Query) -> Result<(), FaqAiError> {
    if !q.is_ij() {
        return Err(FaqAiError::NotAnIjQuery);
    }
    for atom in q.atoms() {
        for (i, v) in atom.vars.iter().enumerate() {
            if q.var_kind(v) == Some(VarKind::Interval) && atom.vars[..i].contains(v) {
                return Err(FaqAiError::RepeatedIntervalVariable {
                    relation: atom.relation.clone(),
                    variable: v.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Builds the FAQ-AI disjunction of a pure IJ query: one conjunct per choice
/// function `(V_X)_X ∈ ∏_X F(X)` (equation (17) of Appendix F.1 and its
/// analogues (24) and (37)).
pub fn faqai_disjunction(q: &Query) -> Result<Vec<FaqAiConjunct>, FaqAiError> {
    validate_ij_query(q)?;
    let f = containing_atoms(q);
    // Enumerate the product of the choice sets.
    let mut choices: Vec<Vec<usize>> = vec![Vec::new()];
    for (_, atoms) in &f {
        let mut next = Vec::with_capacity(choices.len() * atoms.len());
        for prefix in &choices {
            for &a in atoms {
                let mut c = prefix.clone();
                c.push(a);
                next.push(c);
            }
        }
        choices = next;
    }

    let mut conjuncts = Vec::with_capacity(choices.len());
    for choice in choices {
        let mut inequalities = Vec::new();
        for ((var, atoms), &chosen) in f.iter().zip(&choice) {
            for &other in atoms {
                if other == chosen {
                    continue;
                }
                // X.l(other) ≤ X.l(chosen) ≤ X.r(other)
                inequalities.push(Inequality {
                    lhs: ScalarVar {
                        var: var.clone(),
                        atom: other,
                        end: Endpoint::Left,
                    },
                    rhs: ScalarVar {
                        var: var.clone(),
                        atom: chosen,
                        end: Endpoint::Left,
                    },
                });
                inequalities.push(Inequality {
                    lhs: ScalarVar {
                        var: var.clone(),
                        atom: chosen,
                        end: Endpoint::Left,
                    },
                    rhs: ScalarVar {
                        var: var.clone(),
                        atom: other,
                        end: Endpoint::Right,
                    },
                });
            }
        }
        conjuncts.push(FaqAiConjunct {
            choice: f
                .iter()
                .map(|(v, _)| v.clone())
                .zip(choice.iter().copied())
                .collect(),
            inequalities,
            num_atoms: q.atoms().len(),
        });
    }
    Ok(conjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Query {
        Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap()
    }

    fn four_clique() -> Query {
        Query::parse("R([A],[B]) & S([A],[C]) & T([A],[D]) & U([B],[C]) & V([B],[D]) & W([C],[D])")
            .unwrap()
    }

    fn lw4() -> Query {
        Query::parse("R([A],[B],[C]) & S([B],[C],[D]) & T([C],[D],[A]) & U([D],[A],[B])").unwrap()
    }

    #[test]
    fn triangle_has_eight_conjuncts_with_six_inequalities_each() {
        let conjuncts = faqai_disjunction(&triangle()).unwrap();
        // |F(A)| · |F(B)| · |F(C)| = 2 · 2 · 2.
        assert_eq!(conjuncts.len(), 8);
        for c in &conjuncts {
            // 3 variables × 1 non-chosen atom × 2 inequalities.
            assert_eq!(c.inequalities.len(), 6);
            // Every inequality connects two different atoms for the triangle
            // (each variable occurs in exactly two atoms).
            assert!(c.cross_atom_inequalities().len() == 6);
            assert_eq!(c.num_atoms, 3);
            // Every pair of atoms is connected by some inequality.
            assert_eq!(c.connected_atom_pairs(), vec![(0, 1), (0, 2), (1, 2)]);
        }
    }

    #[test]
    fn lw4_has_81_conjuncts_with_sixteen_inequalities_each() {
        let conjuncts = faqai_disjunction(&lw4()).unwrap();
        assert_eq!(conjuncts.len(), 81);
        for c in &conjuncts {
            // 4 variables × 2 non-chosen atoms × 2 inequalities.
            assert_eq!(c.inequalities.len(), 16);
        }
    }

    #[test]
    fn four_clique_has_81_conjuncts_with_sixteen_inequalities_each() {
        let conjuncts = faqai_disjunction(&four_clique()).unwrap();
        // Every variable occurs in three atoms: 3^4 choice functions.
        assert_eq!(conjuncts.len(), 81);
        for c in &conjuncts {
            assert_eq!(c.inequalities.len(), 16);
            assert_eq!(c.num_atoms, 6);
        }
    }

    #[test]
    fn containing_atoms_follows_appendix_f() {
        // F(A) = {R, T}, F(B) = {R, S}, F(C) = {S, T} for the triangle, using
        // atom indices 0, 1, 2.
        let f = containing_atoms(&triangle());
        assert_eq!(
            f,
            vec![
                ("A".to_string(), vec![0, 2]),
                ("B".to_string(), vec![0, 1]),
                ("C".to_string(), vec![1, 2]),
            ]
        );
    }

    #[test]
    fn point_variables_are_rejected() {
        let q = Query::parse("R(X,[A]) & S(X,[A])").unwrap();
        assert!(matches!(
            faqai_disjunction(&q),
            Err(FaqAiError::NotAnIjQuery)
        ));
    }

    #[test]
    fn repeated_interval_variables_are_rejected() {
        let q = Query::parse("R([A],[A]) & S([A])").unwrap();
        assert!(matches!(
            faqai_disjunction(&q),
            Err(FaqAiError::RepeatedIntervalVariable { .. })
        ));
    }

    #[test]
    fn conjunct_rendering_mentions_the_choice() {
        let conjuncts = faqai_disjunction(&triangle()).unwrap();
        let text = conjuncts[0].to_string();
        assert!(text.contains("V_A="));
        assert!(text.contains('≤'));
    }
}
