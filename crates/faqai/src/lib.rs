//! # ij-faqai — the FAQ-AI comparator (paper Appendix F)
//!
//! An intersection join can be expressed as a disjunction of *inequality*
//! joins: two intervals `[l1, r1]` and `[l2, r2]` intersect exactly when
//! `(l1 ≤ l2 ≤ r1) ∨ (l2 ≤ l1 ≤ r2)`.  The paper's main comparator, FAQ-AI
//! \[2\], evaluates Boolean conjunctive queries with such additive inequalities
//! over *relaxed* tree decompositions, paying `O(N^{subw_ℓ} polylog N)` where
//! `subw_ℓ` is the relaxed submodular width.  Appendix F shows that this
//! exponent is 2, 2 and 3 for the triangle, Loomis–Whitney-4 and 4-clique
//! intersection-join queries, strictly worse than the ij-widths 3/2, 5/3
//! and 2 achieved by the reduction of Sections 4–5.
//!
//! This crate reproduces that comparator:
//!
//! * [`conjunct`] rewrites a pure IJ query into the FAQ-AI disjunction of
//!   inequality-join conjuncts (equations (15)–(17), (24), (37));
//! * [`relaxed`] computes optimal relaxed tree decompositions, the relaxed
//!   fractional hypertree width, the FAQ-AI `log` exponent, and Table 3;
//! * [`evaluate`] is a Boolean evaluator over those decompositions whose
//!   dominant cost is the `Θ(N^{fhtw_ℓ})` bag materialisation, providing the
//!   empirical comparator column of Table 1.
//!
//! ```
//! use ij_faqai::prelude::*;
//! use ij_relation::Query;
//!
//! let triangle = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! let analysis = analyze_disjunction(&faqai_disjunction(&triangle).unwrap());
//! assert_eq!(analysis.width, 2);            // fhtw_ℓ = subw_ℓ = 2
//! assert_eq!(analysis.runtime(), "O(N^2 log^3 N)");
//! ```

#![warn(missing_docs)]

pub mod conjunct;
pub mod evaluate;
pub mod relaxed;

pub use conjunct::{
    containing_atoms, faqai_disjunction, Endpoint, FaqAiConjunct, FaqAiError, Inequality, ScalarVar,
};
pub use evaluate::{evaluate_faqai, evaluate_faqai_boolean, FaqAiEvaluation};
pub use relaxed::{
    analyze_disjunction, optimal_relaxed_decomposition, table3, ConjunctAnalysis, FaqAiAnalysis,
    RelaxedDecomposition, Table3Row,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::conjunct::{faqai_disjunction, FaqAiConjunct, FaqAiError};
    pub use crate::evaluate::{evaluate_faqai, evaluate_faqai_boolean};
    pub use crate::relaxed::{analyze_disjunction, optimal_relaxed_decomposition, FaqAiAnalysis};
}
