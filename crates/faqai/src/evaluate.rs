//! A Boolean evaluator for the FAQ-AI reformulation.
//!
//! Each conjunct produced by [`crate::conjunct::faqai_disjunction`] is
//! evaluated over its optimal relaxed tree decomposition
//! ([`crate::relaxed::optimal_relaxed_decomposition`]):
//!
//! 1. every bag is materialised as the cross product of the tuples of its
//!    member atoms (the atoms of a conjunct share no scalar variables, so the
//!    bag join *is* a cross product — this is the `N^{fhtw_ℓ}` term that
//!    dominates the FAQ-AI bound of Appendix F);
//! 2. intra-bag inequalities filter the bag during materialisation;
//! 3. the bag tree is processed bottom-up: a bag tuple survives when, for
//!    every child bag, some surviving child tuple satisfies the inequalities
//!    crossing that tree edge.  The existence probe sorts the child tuples by
//!    one crossing inequality and scans the feasible range for the rest.
//!
//! The evaluator is a faithful comparator for the *shape* of Table 1: its
//! dominant cost is the bag materialisation `Θ(N^{fhtw_ℓ})` (2 for the
//! triangle and LW4, 3 for the 4-clique), whereas the reduction-based engine
//! of `ij-engine` runs in `O(N^{ijw} polylog N)` (1.5, 5/3 and 2
//! respectively).  It is also a correct evaluator in its own right and is
//! differentially tested against the naive intersection-join evaluator.

use crate::conjunct::{faqai_disjunction, Endpoint, FaqAiConjunct, FaqAiError, Inequality};
use crate::relaxed::{optimal_relaxed_decomposition, RelaxedDecomposition};
use ij_relation::{Database, Query};
use std::collections::BTreeMap;

/// Per-atom scalar view of a relation: for every tuple and every column the
/// `(lo, hi)` endpoints of the interval bound to that column.
struct AtomData {
    /// `column_of[var]` is the column index of the interval variable.
    column_of: BTreeMap<String, usize>,
    /// `endpoints[tuple][column] = (lo, hi)`.
    endpoints: Vec<Vec<(f64, f64)>>,
}

/// Statistics of one FAQ-AI evaluation, used by the benchmark harness.
#[derive(Debug, Clone, Default)]
pub struct FaqAiEvaluation {
    /// The Boolean answer.
    pub answer: bool,
    /// Number of conjuncts evaluated before the first true one (all of them
    /// when the answer is false).
    pub conjuncts_evaluated: usize,
    /// Number of conjuncts of the disjunction.
    pub conjuncts_total: usize,
    /// The largest materialised bag across all evaluated conjuncts.
    pub max_bag_tuples: usize,
}

/// Evaluates a pure IJ query through the FAQ-AI reformulation and returns
/// the Boolean answer.
pub fn evaluate_faqai_boolean(q: &Query, db: &Database) -> Result<bool, FaqAiError> {
    Ok(evaluate_faqai(q, db)?.answer)
}

/// Evaluates a pure IJ query through the FAQ-AI reformulation, returning
/// evaluation statistics.
pub fn evaluate_faqai(q: &Query, db: &Database) -> Result<FaqAiEvaluation, FaqAiError> {
    let conjuncts = faqai_disjunction(q)?;
    let atoms = load_atoms(q, db)?;
    let mut stats = FaqAiEvaluation {
        conjuncts_total: conjuncts.len(),
        ..Default::default()
    };
    for conjunct in &conjuncts {
        stats.conjuncts_evaluated += 1;
        let decomposition = optimal_relaxed_decomposition(conjunct);
        if evaluate_conjunct(conjunct, &decomposition, &atoms, &mut stats.max_bag_tuples) {
            stats.answer = true;
            return Ok(stats);
        }
    }
    Ok(stats)
}

/// Loads the scalar endpoint view of every atom of the query.
fn load_atoms(q: &Query, db: &Database) -> Result<Vec<AtomData>, FaqAiError> {
    let mut out = Vec::with_capacity(q.atoms().len());
    for atom in q.atoms() {
        let rel = db
            .relation(&atom.relation)
            .ok_or_else(|| FaqAiError::MissingRelation(atom.relation.clone()))?;
        let mut column_of = BTreeMap::new();
        for (c, v) in atom.vars.iter().enumerate() {
            column_of.insert(v.clone(), c);
        }
        let mut endpoints = Vec::with_capacity(rel.len());
        for tuple in rel.tuples() {
            let mut row = Vec::with_capacity(atom.vars.len());
            for (c, value) in tuple.iter().enumerate().take(atom.vars.len()) {
                let iv = value.to_interval().ok_or(FaqAiError::NotAnInterval {
                    relation: atom.relation.clone(),
                    column: c,
                })?;
                row.push((iv.lo(), iv.hi()));
            }
            endpoints.push(row);
        }
        out.push(AtomData {
            column_of,
            endpoints,
        });
    }
    Ok(out)
}

/// One materialised bag: for every surviving bag tuple, the tuple index
/// chosen for each member atom (aligned with `atoms`).
struct Bag {
    /// Atom indices of the bag members.
    atoms: Vec<usize>,
    /// Surviving combinations of tuple indices, one per member atom.
    tuples: Vec<Vec<usize>>,
}

impl Bag {
    /// The scalar value of `s` under bag tuple `t` (the scalar's atom must be
    /// a member of this bag).
    fn scalar(&self, t: &[usize], s: &crate::conjunct::ScalarVar, atoms: &[AtomData]) -> f64 {
        let pos = self
            .atoms
            .iter()
            .position(|&a| a == s.atom)
            .expect("scalar atom in bag");
        let data = &atoms[s.atom];
        let column = data.column_of[&s.var];
        let (lo, hi) = data.endpoints[t[pos]][column];
        match s.end {
            Endpoint::Left => lo,
            Endpoint::Right => hi,
        }
    }
}

/// Evaluates one conjunct over its relaxed decomposition.  Returns true if a
/// combination of tuples (one per atom) satisfies every inequality.
fn evaluate_conjunct(
    conjunct: &FaqAiConjunct,
    decomposition: &RelaxedDecomposition,
    atoms: &[AtomData],
    max_bag_tuples: &mut usize,
) -> bool {
    // --- bag materialisation -------------------------------------------------
    let bag_of = |atom: usize| {
        decomposition
            .bags
            .iter()
            .position(|b| b.contains(&atom))
            .expect("atom in some bag")
    };
    let mut bags: Vec<Bag> = Vec::with_capacity(decomposition.bags.len());
    for members in &decomposition.bags {
        // Inequalities fully inside this bag filter the cross product.
        let local: Vec<&Inequality> = conjunct
            .inequalities
            .iter()
            .filter(|i| {
                let (a, b) = i.atoms();
                members.contains(&a) && members.contains(&b)
            })
            .collect();
        let mut tuples: Vec<Vec<usize>> = vec![Vec::new()];
        for &atom in members {
            let n = atoms[atom].endpoints.len();
            let mut next = Vec::with_capacity(tuples.len() * n);
            for prefix in &tuples {
                for t in 0..n {
                    let mut row = prefix.clone();
                    row.push(t);
                    next.push(row);
                }
            }
            tuples = next;
        }
        let bag = Bag {
            atoms: members.clone(),
            tuples,
        };
        let filtered: Vec<Vec<usize>> = bag
            .tuples
            .iter()
            .filter(|t| {
                local
                    .iter()
                    .all(|i| bag.scalar(t, &i.lhs, atoms) <= bag.scalar(t, &i.rhs, atoms))
            })
            .cloned()
            .collect();
        *max_bag_tuples = (*max_bag_tuples).max(filtered.len());
        bags.push(Bag {
            atoms: members.clone(),
            tuples: filtered,
        });
    }
    if bags.iter().any(|b| b.tuples.is_empty()) {
        return false;
    }

    // --- bottom-up pass over the bag tree ------------------------------------
    // Root at bag 0; compute a parent-first order.
    let num_bags = bags.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); num_bags];
    {
        let mut visited = vec![false; num_bags];
        let mut stack = vec![0usize];
        visited[0] = true;
        while let Some(b) = stack.pop() {
            for &(x, y) in &decomposition.tree_edges {
                let other = if x == b {
                    y
                } else if y == b {
                    x
                } else {
                    continue;
                };
                if !visited[other] {
                    visited[other] = true;
                    children[b].push(other);
                    stack.push(other);
                }
            }
        }
    }

    // Crossing inequalities per unordered bag pair.
    let mut crossing: BTreeMap<(usize, usize), Vec<&Inequality>> = BTreeMap::new();
    for i in &conjunct.inequalities {
        let (a, b) = i.atoms();
        let (ba, bb) = (bag_of(a), bag_of(b));
        if ba != bb {
            crossing
                .entry((ba.min(bb), ba.max(bb)))
                .or_default()
                .push(i);
        }
    }

    // Post-order: process a bag only after all of its children.
    let order = post_order(0, &children);
    let mut surviving: Vec<Option<Vec<Vec<usize>>>> = vec![None; num_bags];
    for &b in &order {
        let mut alive: Vec<Vec<usize>> = bags[b].tuples.clone();
        for &child in &children[b] {
            let child_tuples = surviving[child].as_ref().expect("post-order");
            if child_tuples.is_empty() {
                return false;
            }
            let ineqs = crossing
                .get(&(b.min(child), b.max(child)))
                .cloned()
                .unwrap_or_default();
            alive = semijoin_by_inequalities(
                &bags[b],
                alive,
                &bags[child],
                child_tuples,
                &ineqs,
                atoms,
            );
            if alive.is_empty() {
                return false;
            }
        }
        surviving[b] = Some(alive);
    }
    surviving[0]
        .as_ref()
        .map(|s| !s.is_empty())
        .unwrap_or(false)
}

/// Post-order traversal of the rooted bag tree.
fn post_order(root: usize, children: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::new();
    fn rec(b: usize, children: &[Vec<usize>], order: &mut Vec<usize>) {
        for &c in &children[b] {
            rec(c, children, order);
        }
        order.push(b);
    }
    rec(root, children, &mut order);
    order
}

/// Keeps the parent tuples for which some child tuple satisfies every
/// crossing inequality.  The child tuples are sorted by the child-side scalar
/// of one inequality so that each probe scans only the feasible range for it;
/// the remaining inequalities are verified on the candidates with early exit.
fn semijoin_by_inequalities(
    parent: &Bag,
    parent_tuples: Vec<Vec<usize>>,
    child: &Bag,
    child_tuples: &[Vec<usize>],
    ineqs: &[&Inequality],
    atoms: &[AtomData],
) -> Vec<Vec<usize>> {
    if ineqs.is_empty() {
        // No constraint between the bags: every parent tuple survives because
        // the child is non-empty.
        return parent_tuples;
    }
    // Pick the first inequality as the sort key.  Determine which side lives
    // in the child bag.
    let pivot = ineqs[0];
    let child_has_lhs = child.atoms.contains(&pivot.lhs.atom);
    let (child_side, parent_side) = if child_has_lhs {
        (&pivot.lhs, &pivot.rhs)
    } else {
        (&pivot.rhs, &pivot.lhs)
    };

    let mut sorted: Vec<(f64, &Vec<usize>)> = child_tuples
        .iter()
        .map(|t| (child.scalar(t, child_side, atoms), t))
        .collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    let check_rest = |p: &Vec<usize>, c: &Vec<usize>| {
        ineqs.iter().skip(1).all(|i| {
            let lhs = scalar_in_either(parent, p, child, c, &i.lhs, atoms);
            let rhs = scalar_in_either(parent, p, child, c, &i.rhs, atoms);
            lhs <= rhs
        })
    };

    parent_tuples
        .into_iter()
        .filter(|p| {
            let bound = parent.scalar(p, parent_side, atoms);
            if child_has_lhs {
                // child_scalar ≤ parent_scalar: feasible prefix of `sorted`.
                let end = sorted.partition_point(|(v, _)| *v <= bound);
                sorted[..end].iter().any(|(_, c)| check_rest(p, c))
            } else {
                // parent_scalar ≤ child_scalar: feasible suffix of `sorted`.
                let start = sorted.partition_point(|(v, _)| *v < bound);
                sorted[start..].iter().any(|(_, c)| check_rest(p, c))
            }
        })
        .collect()
}

/// Looks a scalar up in whichever of the two bags contains its atom.
fn scalar_in_either(
    parent: &Bag,
    p: &[usize],
    child: &Bag,
    c: &[usize],
    s: &crate::conjunct::ScalarVar,
    atoms: &[AtomData],
) -> f64 {
    if parent.atoms.contains(&s.atom) {
        parent.scalar(p, s, atoms)
    } else {
        child.scalar(c, s, atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::Value;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    fn triangle() -> Query {
        Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap()
    }

    /// A brute-force intersection-join oracle over all tuple combinations.
    fn oracle(q: &Query, db: &Database) -> bool {
        fn rec(q: &Query, db: &Database, level: usize, chosen: &mut Vec<usize>) -> bool {
            if level == q.atoms().len() {
                // Check every interval variable's intersection.
                for var in q.interval_variables() {
                    let mut lo = f64::NEG_INFINITY;
                    let mut hi = f64::INFINITY;
                    for (i, atom) in q.atoms().iter().enumerate() {
                        if let Some(col) = atom.vars.iter().position(|v| *v == var) {
                            let rel = db.relation(&atom.relation).unwrap();
                            let interval = rel.value_at(chosen[i], col).to_interval().unwrap();
                            lo = lo.max(interval.lo());
                            hi = hi.min(interval.hi());
                        }
                    }
                    if lo > hi {
                        return false;
                    }
                }
                return true;
            }
            let rel = db.relation(&q.atoms()[level].relation).unwrap();
            for t in 0..rel.len() {
                chosen.push(t);
                if rec(q, db, level + 1, chosen) {
                    return true;
                }
                chosen.pop();
            }
            false
        }
        rec(q, db, 0, &mut Vec::new())
    }

    #[test]
    fn triangle_positive_and_negative_instances() {
        let q = triangle();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);
        assert!(evaluate_faqai_boolean(&q, &db).unwrap());

        let mut db2 = db.clone();
        db2.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(30.0, 31.0)]]);
        assert!(!evaluate_faqai_boolean(&q, &db2).unwrap());
    }

    #[test]
    fn faqai_agrees_with_the_brute_force_oracle_on_random_triangles() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let q = triangle();
        let mut both = [false, false];
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut db = Database::new();
            for name in ["R", "S", "T"] {
                let tuples: Vec<Vec<Value>> = (0..6)
                    .map(|_| {
                        (0..2)
                            .map(|_| {
                                let lo = rng.gen_range(0.0..60.0);
                                let len = rng.gen_range(0.0..8.0);
                                iv(lo, lo + len)
                            })
                            .collect()
                    })
                    .collect();
                db.insert_tuples(name, 2, tuples);
            }
            let expected = oracle(&q, &db);
            assert_eq!(
                evaluate_faqai_boolean(&q, &db).unwrap(),
                expected,
                "seed {seed}"
            );
            both[usize::from(expected)] = true;
        }
        assert!(
            both[0] && both[1],
            "the random instances must cover both outcomes"
        );
    }

    #[test]
    fn point_intervals_degenerate_to_equality_joins() {
        let q = triangle();
        let p = |x: f64| Value::interval(x, x);
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![p(1.0), p(2.0)], vec![p(4.0), p(5.0)]]);
        db.insert_tuples("S", 2, vec![vec![p(2.0), p(3.0)]]);
        db.insert_tuples("T", 2, vec![vec![p(1.0), p(3.0)]]);
        assert!(evaluate_faqai_boolean(&q, &db).unwrap());
        let mut db2 = db.clone();
        db2.insert_tuples("T", 2, vec![vec![p(1.0), p(9.0)]]);
        assert!(!evaluate_faqai_boolean(&q, &db2).unwrap());
    }

    #[test]
    fn four_clique_instances() {
        let q = Query::parse(
            "R([A],[B]) & S([A],[C]) & T([A],[D]) & U([B],[C]) & V([B],[D]) & W([C],[D])",
        )
        .unwrap();
        // All six relations hold one tuple of pairwise-intersecting intervals.
        let mut db = Database::new();
        for name in ["R", "S", "T", "U", "V", "W"] {
            db.insert_tuples(name, 2, vec![vec![iv(0.0, 10.0), iv(5.0, 15.0)]]);
        }
        assert!(evaluate_faqai_boolean(&q, &db).unwrap());
        assert!(oracle(&q, &db));

        // Break variable D in relation W only.
        db.insert_tuples("W", 2, vec![vec![iv(0.0, 10.0), iv(100.0, 101.0)]]);
        assert!(!evaluate_faqai_boolean(&q, &db).unwrap());
        assert!(!oracle(&q, &db));
    }

    #[test]
    fn missing_relations_and_point_variables_are_rejected() {
        let q = triangle();
        let db = Database::new();
        assert!(matches!(
            evaluate_faqai_boolean(&q, &db),
            Err(FaqAiError::MissingRelation(_))
        ));
        let mixed = Query::parse("R(X,[A]) & S(X,[A])").unwrap();
        assert!(matches!(
            evaluate_faqai_boolean(&mixed, &Database::new()),
            Err(FaqAiError::NotAnIjQuery)
        ));
    }

    #[test]
    fn stats_report_bag_sizes_and_early_exit() {
        let q = triangle();
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            db.insert_tuples(
                name,
                2,
                (0..5)
                    .map(|i| vec![iv(i as f64, i as f64 + 2.0), iv(i as f64, i as f64 + 2.0)])
                    .collect(),
            );
        }
        let stats = evaluate_faqai(&q, &db).unwrap();
        assert!(stats.answer);
        assert_eq!(stats.conjuncts_total, 8);
        assert!(stats.conjuncts_evaluated <= stats.conjuncts_total);
        // One bag holds two atoms of five tuples each: at most 25 bag tuples.
        assert!(stats.max_bag_tuples <= 25);
        assert!(stats.max_bag_tuples > 0);
    }
}
