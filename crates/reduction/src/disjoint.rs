//! The disjoint rewriting of the intersection predicate (Appendix G).
//!
//! Lemma 4.3 rewrites the intersection predicate of a set of intervals as a
//! disjunction over permutations of the intervals; several permutations can
//! witness the same intersection, which is harmless for Boolean evaluation
//! but breaks counting and enumeration.  Appendix G refines the rewriting in
//! two steps:
//!
//! * **G.1** — shift the intervals so that any two intervals from different
//!   relations have distinct left endpoints
//!   ([`ij_relation::Database::shift_left_endpoints`]);
//! * **G.2** — restrict the admissible node tuples to the *ordered tuple
//!   sets* of Definition G.1: ties between equal segment-tree nodes are only
//!   allowed when the permutation lists the intervals in increasing index
//!   order, so that every satisfied intersection predicate is witnessed by
//!   **exactly one** permutation and node tuple (Lemma G.2).
//!
//! This module implements the refined predicate at the level of a single
//! intersection: [`ordered_witnesses`] enumerates every admissible
//! `(permutation, nodes)` pair and [`unique_ordered_witness`] constructs the
//! unique one directly.  Property tests (see `tests/disjoint_predicate.rs`)
//! verify Lemma G.2: the count is one exactly when the intervals intersect.

use ij_segtree::{BitString, Interval, SegmentTree};

/// One witness of the refined intersection predicate: a permutation `σ` of
/// the interval indices and the segment-tree nodes `u_1 ⊑ … ⊑ u_k` along the
/// root-to-leaf path of `leaf(σ_k)` with `u_j ∈ CP(σ_j)` for `j < k` and
/// `u_k = leaf(σ_k)` (Definition G.1 / Lemma G.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedWitness {
    /// The permutation `σ` as interval indices into the input slice.
    pub permutation: Vec<usize>,
    /// The nodes `u_1, …, u_k`, in permutation order (weakly increasing
    /// depth; the last node is the leaf of `σ_k`'s left endpoint).
    pub nodes: Vec<BitString>,
}

impl OrderedWitness {
    /// Checks the conditions of Definition G.1 against a segment tree and the
    /// intervals: membership of each node in the canonical partition of its
    /// interval, the leaf condition for the last position, and the
    /// strict/non-strict ancestor chain driven by the permutation order.
    pub fn is_valid(&self, tree: &SegmentTree, intervals: &[Interval]) -> bool {
        let k = self.permutation.len();
        if k == 0 || self.nodes.len() != k || k != intervals.len() {
            return false;
        }
        // Positions 1..k-1 must be canonical-partition nodes of their
        // interval; position k must be the leaf of the interval's left
        // endpoint.
        for j in 0..k {
            let interval = intervals[self.permutation[j]];
            if j + 1 == k {
                if self.nodes[j] != tree.leaf_of_interval(interval) {
                    return false;
                }
            } else if !tree.canonical_partition(interval).contains(&self.nodes[j]) {
                return false;
            }
        }
        // Ancestor chain: node j-1 must be a prefix of node j; for interior
        // positions (j < k) the prefix must be strict unless the permutation
        // lists the two intervals in increasing index order.
        for j in 1..k {
            let prev = self.nodes[j - 1];
            let here = self.nodes[j];
            if !prev.is_prefix_of(here) {
                return false;
            }
            let interior = j + 1 < k;
            if interior && prev == here && self.permutation[j - 1] > self.permutation[j] {
                return false;
            }
        }
        true
    }
}

/// Enumerates every witness of the refined intersection predicate
/// (Definition G.1) for the given intervals over the given segment tree.
///
/// By Lemma G.2 the result has exactly one element when the intervals
/// intersect and have pairwise-distinct left endpoints, and is empty when
/// they do not intersect.  The enumeration is exponential in the number of
/// intervals and exists for verification and property testing; use
/// [`unique_ordered_witness`] in algorithmic contexts.
pub fn ordered_witnesses(tree: &SegmentTree, intervals: &[Interval]) -> Vec<OrderedWitness> {
    let k = intervals.len();
    if k == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for permutation in permutations(k) {
        // The node of the last position is forced; the nodes of the other
        // positions must be canonical-partition nodes on the path to it.
        let leaf = tree.leaf_of_interval(intervals[permutation[k - 1]]);
        let mut candidates: Vec<Vec<BitString>> = Vec::with_capacity(k);
        for (j, &idx) in permutation.iter().enumerate() {
            if j + 1 == k {
                candidates.push(vec![leaf]);
            } else {
                candidates.push(
                    tree.canonical_partition(intervals[idx])
                        .into_iter()
                        .filter(|n| n.is_prefix_of(leaf))
                        .collect(),
                );
            }
        }
        // Cross product (tiny: each candidate list has at most one element by
        // Property 3.2(2), but we keep the general form for verification).
        let mut stack: Vec<Vec<BitString>> = vec![Vec::new()];
        for options in &candidates {
            let mut next = Vec::new();
            for prefix in &stack {
                for &node in options {
                    let mut row = prefix.clone();
                    row.push(node);
                    next.push(row);
                }
            }
            stack = next;
        }
        for nodes in stack {
            let witness = OrderedWitness {
                permutation: permutation.clone(),
                nodes,
            };
            if witness.is_valid(tree, intervals) {
                out.push(witness);
            }
        }
    }
    out
}

/// Constructs the unique ordered witness of Lemma G.2 directly, or `None` if
/// the intervals do not intersect.
///
/// The intervals should have pairwise-distinct left endpoints (Appendix G.1);
/// with ties the construction still returns a single witness (the one whose
/// final position has the largest index among the maximising intervals), but
/// uniqueness among *all* admissible witnesses is only guaranteed after the
/// G.1 transformation.
pub fn unique_ordered_witness(
    tree: &SegmentTree,
    intervals: &[Interval],
) -> Option<OrderedWitness> {
    if intervals.is_empty() {
        return None;
    }
    Interval::intersect_all(intervals.iter().copied())?;
    // The final interval σ_k is the one with the maximum left endpoint (ties
    // broken towards the largest index).
    let last = intervals
        .iter()
        .enumerate()
        .max_by(|(i, a), (j, b)| a.lo().total_cmp(&b.lo()).then(i.cmp(j)))
        .map(|(i, _)| i)
        .expect("non-empty input");
    let leaf = tree.leaf_of_interval(intervals[last]);

    // For every other interval: the unique canonical-partition node on the
    // path to `leaf` (Property 4.2).
    let mut tagged: Vec<(BitString, usize)> = Vec::with_capacity(intervals.len() - 1);
    for (i, &interval) in intervals.iter().enumerate() {
        if i == last {
            continue;
        }
        let node = tree
            .canonical_partition(interval)
            .into_iter()
            .find(|n| n.is_prefix_of(leaf))?;
        tagged.push((node, i));
    }
    // Order by (depth, interval index): the unique admissible interior order.
    tagged.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then(a.1.cmp(&b.1)));

    let mut permutation: Vec<usize> = tagged.iter().map(|(_, i)| *i).collect();
    let mut nodes: Vec<BitString> = tagged.iter().map(|(n, _)| *n).collect();
    permutation.push(last);
    nodes.push(leaf);
    let witness = OrderedWitness { permutation, nodes };
    debug_assert!(witness.is_valid(tree, intervals));
    Some(witness)
}

/// Counts the witnesses of the *unrestricted* rewriting of Lemma 4.3 (no
/// ordering discipline): useful to demonstrate why the Appendix G refinement
/// is needed for counting.
pub fn unrestricted_witness_count(tree: &SegmentTree, intervals: &[Interval]) -> usize {
    let k = intervals.len();
    if k == 0 {
        return 0;
    }
    let mut count = 0usize;
    for permutation in permutations(k) {
        let leaf = tree.leaf_of_interval(intervals[permutation[k - 1]]);
        // By Property 4.2 each interval has at most one canonical-partition
        // node on the path to `leaf`; the permutation is a witness when every
        // interior interval has one and their depths are weakly increasing
        // along the permutation (the ancestor chain of Lemma 4.3).
        let mut nodes: Vec<BitString> = Vec::with_capacity(k);
        let mut ok = true;
        for (j, &idx) in permutation.iter().enumerate() {
            if j + 1 == k {
                nodes.push(leaf);
                break;
            }
            match tree
                .canonical_partition(intervals[idx])
                .into_iter()
                .find(|n| n.is_prefix_of(leaf))
            {
                Some(n) => nodes.push(n),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && nodes.windows(2).all(|w| w[0].is_prefix_of(w[1])) {
            count += 1;
        }
    }
    count
}

/// All permutations of `0..k` (Heap's algorithm, iterative collection).
fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn rec(current: &mut Vec<usize>, remaining: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(current.clone());
            return;
        }
        for i in 0..remaining.len() {
            let x = remaining.remove(i);
            current.push(x);
            rec(current, remaining, out);
            current.pop();
            remaining.insert(i, x);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..k).collect(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_over(intervals: &[Interval]) -> SegmentTree {
        SegmentTree::build(intervals)
    }

    #[test]
    fn intersecting_intervals_have_exactly_one_ordered_witness() {
        let intervals = [
            Interval::new(0.0, 10.0),
            Interval::new(3.0, 8.0),
            Interval::new(5.0, 12.0),
        ];
        let tree = tree_over(&intervals);
        let witnesses = ordered_witnesses(&tree, &intervals);
        assert_eq!(witnesses.len(), 1, "Lemma G.2: exactly one witness");
        let unique = unique_ordered_witness(&tree, &intervals).unwrap();
        assert_eq!(witnesses[0], unique);
        // The final position is the interval with the maximum left endpoint.
        assert_eq!(*unique.permutation.last().unwrap(), 2);
        assert!(unique.is_valid(&tree, &intervals));
    }

    #[test]
    fn disjoint_intervals_have_no_witness() {
        let intervals = [Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)];
        let tree = tree_over(&intervals);
        assert!(ordered_witnesses(&tree, &intervals).is_empty());
        assert!(unique_ordered_witness(&tree, &intervals).is_none());
        assert_eq!(unrestricted_witness_count(&tree, &intervals), 0);
    }

    #[test]
    fn unrestricted_rewriting_can_overcount() {
        // Two pairs of nested intervals sharing structure: the unrestricted
        // Lemma 4.3 predicate admits at least as many witnesses as the
        // ordered one, and strictly more when nodes coincide.
        let intervals = [
            Interval::new(0.0, 100.0),
            Interval::new(0.0, 100.0),
            Interval::new(10.0, 20.0),
        ];
        let tree = tree_over(&intervals);
        let ordered = ordered_witnesses(&tree, &intervals);
        let unrestricted = unrestricted_witness_count(&tree, &intervals);
        assert_eq!(ordered.len(), 1);
        assert!(
            unrestricted > ordered.len(),
            "unrestricted count {unrestricted} should exceed the ordered count"
        );
    }

    #[test]
    fn single_interval_is_witnessed_by_its_leaf() {
        let intervals = [Interval::new(4.0, 9.0)];
        let tree = tree_over(&intervals);
        let w = unique_ordered_witness(&tree, &intervals).unwrap();
        assert_eq!(w.permutation, vec![0]);
        assert_eq!(w.nodes, vec![tree.leaf_of_interval(intervals[0])]);
        assert_eq!(ordered_witnesses(&tree, &intervals).len(), 1);
    }

    #[test]
    fn equal_left_endpoints_show_why_g1_is_needed() {
        // Two identical point intervals violate the distinct-left-endpoint
        // precondition of Lemma G.2: both orders witness the intersection, so
        // uniqueness fails — exactly the situation the Appendix G.1 shift
        // removes.  Disjoint points still have no witness.
        let a = Interval::point(5.0);
        let b = Interval::point(5.0);
        let c = Interval::point(6.0);
        let tree = tree_over(&[a, b, c]);
        assert_eq!(ordered_witnesses(&tree, &[a, b]).len(), 2);
        assert!(unique_ordered_witness(&tree, &[a, b]).is_some());
        assert!(ordered_witnesses(&tree, &[a, c]).is_empty());
    }

    #[test]
    fn invalid_witnesses_are_rejected() {
        let intervals = [Interval::new(0.0, 10.0), Interval::new(3.0, 8.0)];
        let tree = tree_over(&intervals);
        let mut w = unique_ordered_witness(&tree, &intervals).unwrap();
        // Swap the permutation without swapping the nodes: invalid.
        w.permutation.swap(0, 1);
        assert!(!w.is_valid(&tree, &intervals));
        // Wrong length: invalid.
        let short = OrderedWitness {
            permutation: vec![0],
            nodes: vec![],
        };
        assert!(!short.is_valid(&tree, &intervals));
    }
}
