//! The forward (IJ-to-EJ) and backward (EJ-to-IJ) reductions.
//!
//! * [`forward_reduction`] implements Section 4 / Algorithm 1: an IJ (or
//!   mixed EIJ) query and an interval database become a disjunction of EJ
//!   queries over a database of segment-tree bitstrings, with a
//!   poly-logarithmic blow-up in size (Lemma 4.10) and equivalence of the
//!   Boolean answers (Theorem 4.13).
//! * [`backward_reduction`] implements Section 5 / Definition D.2: a database
//!   over the schema of one of the reduced EJ queries is embedded back into
//!   an interval database for the original query via the dyadic mapping of
//!   Example 5.1, showing the reduction is tight (Theorem 5.2).
//! * [`ordered_witnesses`] / [`unique_ordered_witness`] implement the
//!   disjoint rewriting of the intersection predicate (Appendix G /
//!   Lemma G.2), which makes every satisfied intersection predicate
//!   attributable to exactly one permutation and node tuple — the property
//!   needed to lift the reduction from Boolean evaluation to counting and
//!   enumeration.
//!
//! # Example
//!
//! ```
//! use ij_relation::{Database, Query, Value};
//! use ij_reduction::forward_reduction;
//!
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! let mut db = Database::new();
//! let iv = |lo, hi| Value::interval(lo, hi);
//! db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(0.0, 2.0)]]);
//! db.insert_tuples("S", 2, vec![vec![iv(1.0, 3.0), iv(5.0, 6.0)]]);
//! db.insert_tuples("T", 2, vec![vec![iv(2.0, 8.0), iv(5.5, 7.0)]]);
//! let reduction = forward_reduction(&q, &db).unwrap();
//! assert_eq!(reduction.queries.len(), 8); // Section 1.1: eight EJ queries
//! ```

mod backward;
mod disjoint;
mod forward;

pub use backward::{backward_reduction, BackwardError};
pub use disjoint::{
    ordered_witnesses, unique_ordered_witness, unrestricted_witness_count, OrderedWitness,
};
pub use forward::{
    forward_reduction, forward_reduction_with, forward_reduction_with_token, EncodingStrategy,
    ForwardReduction, ReducedAtom, ReducedQuery, ReductionConfig, ReductionError, ReductionStats,
};
