//! The data-level forward reduction (Section 4, Algorithm 1).
//!
//! Given an IJ (or mixed EIJ) query `Q` and a database `D` of intervals, the
//! reduction produces a disjunction of EJ queries over a database of
//! segment-tree bitstrings such that `Q(D)` is true iff one of the EJ queries
//! is true over the transformed database (Theorem 4.13).
//!
//! The implementation resolves every join interval variable at once (the
//! iterative one-variable-at-a-time formulation of Algorithm 1 composes to
//! exactly this): for each interval variable `[X]` occurring in `k` atoms a
//! segment tree is built over all `[X]`-intervals of those atoms, and the
//! atom at position `i` of a permutation of the `k` atoms receives, per
//! original tuple,
//!
//! * one transformed tuple per node of the canonical partition of the
//!   interval and per composition of that node's bitstring into `i` parts,
//!   when `i < k` (Definition 4.9, second bullet);
//! * one transformed tuple per composition of `leaf(x)` into `k` parts, when
//!   `i = k` (third bullet).
//!
//! Transformed relations are shared across the EJ queries of the disjunction:
//! the relation for an atom only depends on the *level* assigned to each of
//! its interval variables, not on the full permutation.

use ij_hypergraph::{full_reduction, Hypergraph, ReducedHypergraph, VarId, VarKind};
use ij_relation::sync::lock_recover;
use ij_relation::{
    faults, CancelTicker, CancellationToken, Database, EvalError, Query, Relation,
    SharedDictionary, Value, ValueId,
};
use ij_segtree::{BitString, Interval, SegmentTree};
use std::collections::BTreeMap;

/// How the transformed relations encode the bitstring columns of an atom with
/// several interval variables (Section 1.1, closing discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingStrategy {
    /// The paper's default encoding: one transformed relation per atom and
    /// level assignment, holding every combination of the per-variable
    /// bitstring expansions.  An atom with `j` join interval variables of
    /// degree `m` blows up by a factor `O(log^j N)` *per combination*, i.e.
    /// the relation materialises the product of the per-variable expansions.
    #[default]
    Flat,
    /// The lossless decomposition sketched at the end of Section 1.1: the
    /// atom is split into a *spine* relation `R̃(Id, carried…)` plus one
    /// relation `R̃_X(Id, X₁,…,X_ℓ)` per interval variable, joined on a
    /// per-tuple identifier.  The transformed size is the *sum* of the
    /// per-variable expansions instead of their product — `O(N log N)` per
    /// variable — at the cost of extra (acyclicity-preserving) join atoms in
    /// the reduced EJ queries.  Same data complexity modulo log factors, far
    /// smaller constants for atoms with two or more interval variables.
    Decomposed,
}

/// Configuration of the forward reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReductionConfig {
    /// Encoding of the transformed relations.
    pub encoding: EncodingStrategy,
}

/// One atom of a reduced EJ query: the transformed relation name (in the
/// transformed [`Database`]) and the variable bound to every column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedAtom {
    /// Name of the transformed relation in [`ForwardReduction::database`].
    pub relation: String,
    /// Variable names bound to the columns, e.g. `["A#1", "A#2", "B#1"]`.
    pub vars: Vec<String>,
}

/// One EJ query of the disjunction produced by the forward reduction.
#[derive(Debug, Clone)]
pub struct ReducedQuery {
    /// The atoms.  Under the flat encoding they align one-to-one with the
    /// atoms of the original query; under the decomposed encoding an atom
    /// with two or more interval variables contributes a spine atom plus one
    /// atom per interval variable, all sharing a per-tuple `Id` variable.
    pub atoms: Vec<ReducedAtom>,
    /// The reduced hypergraph (with the permutation bookkeeping).
    pub structure: ReducedHypergraph,
}

impl ReducedQuery {
    /// Dense variable identifiers for the query's variable names, assigned in
    /// first-occurrence order — the binding step shared by every evaluator of
    /// a reduced disjunct (engine and benchmark harness alike).
    pub fn dense_var_ids(&self) -> std::collections::BTreeMap<&str, usize> {
        let mut var_ids = std::collections::BTreeMap::new();
        for atom in &self.atoms {
            for v in &atom.vars {
                let next = var_ids.len();
                var_ids.entry(v.as_str()).or_insert(next);
            }
        }
        var_ids
    }

    /// The reduced query as a [`Query`] value (all point variables).
    pub fn to_query(&self) -> Query {
        Query::from_atoms(
            self.atoms
                .iter()
                .map(|a| ij_relation::Atom {
                    relation: a.relation.clone(),
                    vars: a.vars.clone(),
                })
                .collect(),
            &[],
        )
    }
}

/// Size and construction statistics of a forward reduction (Lemma 4.10 and
/// Theorem 4.15 are about these quantities).
#[derive(Debug, Clone, Default)]
pub struct ReductionStats {
    /// Per interval variable: (name, number of source intervals, segment tree
    /// height).
    pub variables: Vec<(String, usize, u8)>,
    /// Size of the input database (tuples).
    pub input_tuples: usize,
    /// Total number of tuples across all transformed relations.
    pub transformed_tuples: usize,
    /// The largest transformed relation.
    pub max_relation_tuples: usize,
    /// Number of distinct transformed relations.
    pub num_relations: usize,
    /// Number of EJ queries in the disjunction.
    pub num_queries: usize,
}

/// The result of the forward reduction.
#[derive(Debug, Clone)]
pub struct ForwardReduction {
    /// The transformed database `D̃` of bitstrings (plus carried-over point
    /// values).
    pub database: Database,
    /// The EJ queries of the disjunction `⋁ Q̃_i`.
    pub queries: Vec<ReducedQuery>,
    /// Statistics.
    pub stats: ReductionStats,
}

impl ForwardReduction {
    /// Indices into [`ForwardReduction::queries`] with literally identical
    /// queries (same relations bound to the same variables) removed: distinct
    /// permutations frequently produce the same EJ query, and evaluating a
    /// duplicate can never change the disjunction's answer.  Keeps the first
    /// occurrence of each query, in order.
    pub fn deduped_query_indices(&self) -> Vec<usize> {
        let mut seen: std::collections::HashSet<Vec<(&str, &[String])>> =
            std::collections::HashSet::new();
        let mut out = Vec::with_capacity(self.queries.len());
        for (i, rq) in self.queries.iter().enumerate() {
            let key: Vec<(&str, &[String])> = rq
                .atoms
                .iter()
                .map(|a| (a.relation.as_str(), a.vars.as_slice()))
                .collect();
            if seen.insert(key) {
                out.push(i);
            }
        }
        out
    }
}

/// Errors raised by the forward reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionError {
    /// A relation referenced by the query is missing from the database.
    MissingRelation(String),
    /// A relation's arity does not match the query atom.
    ArityMismatch {
        relation: String,
        expected: usize,
        found: usize,
    },
    /// An interval variable occurs twice in the same atom (not supported by
    /// the reduction; rewrite the query first).
    RepeatedIntervalVariable { relation: String, variable: String },
    /// A value of an interval variable is not an interval (or a point, which
    /// is treated as a point interval).
    NotAnInterval { relation: String, column: usize },
    /// The reduction was interrupted mid-transform: the caller's
    /// [`CancellationToken`] was cancelled or its deadline expired.  The
    /// transformed database under construction is dropped whole, never
    /// published partially.
    Interrupted(EvalError),
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::MissingRelation(r) => write!(f, "relation `{r}` missing from database"),
            ReductionError::ArityMismatch {
                relation,
                expected,
                found,
            } => {
                write!(
                    f,
                    "relation `{relation}` has arity {found}, query expects {expected}"
                )
            }
            ReductionError::RepeatedIntervalVariable { relation, variable } => {
                write!(
                    f,
                    "interval variable `{variable}` repeated in atom `{relation}`"
                )
            }
            ReductionError::NotAnInterval { relation, column } => {
                write!(
                    f,
                    "relation `{relation}` column {column} holds a non-interval value"
                )
            }
            ReductionError::Interrupted(e) => write!(f, "reduction interrupted: {e}"),
        }
    }
}

impl std::error::Error for ReductionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReductionError::Interrupted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for ReductionError {
    fn from(e: EvalError) -> Self {
        ReductionError::Interrupted(e)
    }
}

/// Runs the forward reduction of query `q` over database `db` with the
/// default (flat) encoding.
pub fn forward_reduction(q: &Query, db: &Database) -> Result<ForwardReduction, ReductionError> {
    forward_reduction_with(q, db, ReductionConfig::default())
}

/// Runs the forward reduction of query `q` over database `db` with an
/// explicit [`ReductionConfig`].
pub fn forward_reduction_with(
    q: &Query,
    db: &Database,
    config: ReductionConfig,
) -> Result<ForwardReduction, ReductionError> {
    forward_reduction_with_token(q, db, config, None)
}

/// [`forward_reduction_with`] polling a [`CancellationToken`]: the per-tuple
/// transform loops of every relation build check the token every
/// [`check_interval`](CancellationToken::check_interval) rows and abort with
/// [`ReductionError::Interrupted`] when it fires — the segment-tree builds
/// and the structural reduction run to completion (both are small: `O(N)`
/// interval collection and a per-*shape* permutation enumeration).
pub fn forward_reduction_with_token(
    q: &Query,
    db: &Database,
    config: ReductionConfig,
    token: Option<&CancellationToken>,
) -> Result<ForwardReduction, ReductionError> {
    let (hypergraph, var_ids) = q.hypergraph();
    validate(q, db, &hypergraph)?;

    // --- segment trees, one per join interval variable ---------------------
    let id_to_name: BTreeMap<VarId, String> = var_ids
        .iter()
        .map(|(name, &id)| (id, name.clone()))
        .collect();
    let mut trees: BTreeMap<VarId, SegmentTree> = BTreeMap::new();
    let mut stats = ReductionStats {
        input_tuples: db.total_tuples(),
        ..ReductionStats::default()
    };
    for &var in &hypergraph.join_interval_vars() {
        let name = &id_to_name[&var];
        let mut intervals: Vec<Interval> = Vec::new();
        for atom in q.atoms() {
            for (col, v) in atom.vars.iter().enumerate() {
                if v == name {
                    let rel = db.relation(&atom.relation).expect("validated");
                    for value in rel.column(col) {
                        let iv = value.to_interval().ok_or(ReductionError::NotAnInterval {
                            relation: atom.relation.clone(),
                            column: col,
                        })?;
                        intervals.push(iv);
                    }
                }
            }
        }
        let tree = SegmentTree::build(&intervals);
        stats
            .variables
            .push((name.clone(), intervals.len(), tree.height()));
        trees.insert(var, tree);
    }

    // --- structural reduction ----------------------------------------------
    let reduced_structures = full_reduction(&hypergraph);
    stats.num_queries = reduced_structures.len();

    // --- transformed relations, memoised per (atom, level assignment) ------
    // The transformed database interns into the *input* database's
    // dictionary: ids must be join-compatible with the carried columns, and a
    // workspace-scoped input keeps its reduction scoped too.
    let mut database = Database::new_in(db.dictionary().clone());
    let mut built: BTreeMap<String, ()> = BTreeMap::new();
    let mut queries: Vec<ReducedQuery> = Vec::with_capacity(reduced_structures.len());

    for structure in reduced_structures {
        let mut atoms: Vec<ReducedAtom> = Vec::with_capacity(q.atoms().len());
        for atom_idx in 0..q.atoms().len() {
            let levels = &structure.edge_levels[atom_idx];
            let interval_columns: Vec<usize> = q.atoms()[atom_idx]
                .vars
                .iter()
                .enumerate()
                .filter(|(_, v)| q.var_kind(v) == Some(VarKind::Interval))
                .map(|(c, _)| c)
                .collect();
            // The decomposed encoding only pays off for atoms with at least
            // two interval variables (Section 1.1); other atoms use the flat
            // relation under either strategy.
            let decompose =
                config.encoding == EncodingStrategy::Decomposed && interval_columns.len() >= 2;
            if !decompose {
                let (name, vars) =
                    reduced_relation_signature(q, atom_idx, levels, &id_to_name, &var_ids);
                if !built.contains_key(&name) {
                    let relation = build_transformed_relation(
                        q, db, atom_idx, levels, &trees, &name, &var_ids, token,
                    )?;
                    stats.transformed_tuples += relation.len();
                    stats.max_relation_tuples = stats.max_relation_tuples.max(relation.len());
                    database.insert(relation);
                    built.insert(name.clone(), ());
                }
                atoms.push(ReducedAtom {
                    relation: name,
                    vars,
                });
                continue;
            }

            // --- decomposed encoding: spine + one part per interval variable
            let atom = &q.atoms()[atom_idx];
            let id_var = format!("__id:{}@{}", atom.relation, atom_idx);

            let spine_name = format!("{}@{}⟨id⟩", atom.relation, atom_idx);
            if !built.contains_key(&spine_name) {
                let relation = build_spine_relation(q, db, atom_idx, &spine_name, token)?;
                stats.transformed_tuples += relation.len();
                stats.max_relation_tuples = stats.max_relation_tuples.max(relation.len());
                database.insert(relation);
                built.insert(spine_name.clone(), ());
            }
            let mut spine_vars: Vec<String> = vec![id_var.clone()];
            for v in &atom.vars {
                if q.var_kind(v) != Some(VarKind::Interval) {
                    spine_vars.push(v.clone());
                }
            }
            atoms.push(ReducedAtom {
                relation: spine_name,
                vars: spine_vars,
            });

            for &column in &interval_columns {
                let var_name = &atom.vars[column];
                let var_id = var_ids[var_name];
                let level = levels[&var_id];
                let k = hypergraph.degree(var_id);
                let part_name = format!("{}@{}⟨{}:{}⟩", atom.relation, atom_idx, var_name, level);
                if !built.contains_key(&part_name) {
                    let relation = build_part_relation(
                        q,
                        db,
                        atom_idx,
                        column,
                        level,
                        k,
                        &trees[&var_id],
                        &part_name,
                        token,
                    )?;
                    stats.transformed_tuples += relation.len();
                    stats.max_relation_tuples = stats.max_relation_tuples.max(relation.len());
                    database.insert(relation);
                    built.insert(part_name.clone(), ());
                }
                let mut part_vars: Vec<String> = vec![id_var.clone()];
                for j in 1..=level {
                    part_vars.push(format!("{var_name}#{j}"));
                }
                atoms.push(ReducedAtom {
                    relation: part_name,
                    vars: part_vars,
                });
            }
        }
        queries.push(ReducedQuery { atoms, structure });
    }
    stats.num_relations = built.len();

    Ok(ForwardReduction {
        database,
        queries,
        stats,
    })
}

/// Builds the spine relation of the decomposed encoding for one atom: one
/// tuple `(Id, carried point values…)` per source tuple.  Carried columns
/// copy the source relation's interned ids verbatim; only the per-tuple id
/// value is newly interned.
fn build_spine_relation(
    q: &Query,
    db: &Database,
    atom_idx: usize,
    name: &str,
    token: Option<&CancellationToken>,
) -> Result<Relation, ReductionError> {
    let atom = &q.atoms()[atom_idx];
    let source = db.relation(&atom.relation).expect("validated");
    let carried: Vec<&[ValueId]> = atom
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| q.var_kind(v) != Some(VarKind::Interval))
        .map(|(c, _)| source.column_ids(c))
        .collect();
    let mut out = Relation::new_in(name.to_string(), 1 + carried.len(), db.dictionary());
    let tuple_ids = intern_tuple_ids(db.dictionary(), source.len());
    let mut ticker = CancelTicker::new(token);
    let mut row: Vec<ValueId> = Vec::with_capacity(1 + carried.len());
    for (i, &id) in tuple_ids.iter().enumerate() {
        ticker.tick()?;
        row.clear();
        row.push(id);
        for col in &carried {
            row.push(col[i]);
        }
        out.push_ids(&row);
    }
    Ok(out)
}

/// Interns the per-tuple identifier values `0.0 .. n` of the decomposed
/// encoding into `dict`.  The values are the same for every atom (a dense
/// integer prefix), so for the process-global dictionary the interned prefix
/// is memoised process-wide: the spine and every part relation of every atom
/// reuse it instead of re-probing the dictionary under its write lock.
/// Scoped dictionaries intern directly — their ids are not valid across
/// scopes, and a per-scope memo would outlive nothing.
fn intern_tuple_ids(dict: &SharedDictionary, n: usize) -> Vec<ValueId> {
    if !dict.is_global() {
        return (0..n)
            .map(|i| dict.intern(Value::point(i as f64)))
            .collect();
    }
    use std::sync::Mutex;
    static PREFIX: Mutex<Vec<ValueId>> = Mutex::new(Vec::new());
    let mut prefix = lock_recover(&PREFIX, "reduction-tuple-prefix");
    if prefix.len() < n {
        for i in prefix.len()..n {
            prefix.push(ValueId::intern(Value::point(i as f64)));
        }
    }
    prefix[..n].to_vec()
}

/// Builds one per-variable part relation of the decomposed encoding: tuples
/// `(Id, X₁,…,X_ℓ)` listing, per source tuple, the canonical-partition nodes
/// (or the leaf, at level `k`) of its `[X]`-interval split into `ℓ`
/// bitstring pieces (Definition 4.9 applied to a single variable).
#[allow(clippy::too_many_arguments)]
fn build_part_relation(
    q: &Query,
    db: &Database,
    atom_idx: usize,
    column: usize,
    level: usize,
    k: usize,
    tree: &SegmentTree,
    name: &str,
    token: Option<&CancellationToken>,
) -> Result<Relation, ReductionError> {
    faults::point("reduction-transform");
    let atom = &q.atoms()[atom_idx];
    let source = db.relation(&atom.relation).expect("validated");
    let dict = db.dictionary();
    let mut out = Relation::new_in(name.to_string(), 1 + level, dict);
    let intervals: Vec<Option<Interval>> = source.column(column).map(|v| v.to_interval()).collect();
    let tuple_ids = intern_tuple_ids(dict, source.len());
    let mut ticker = CancelTicker::new(token);
    let mut row: Vec<ValueId> = Vec::with_capacity(1 + level);
    for (i, iv) in intervals.into_iter().enumerate() {
        ticker.tick()?;
        let iv = iv.ok_or(ReductionError::NotAnInterval {
            relation: atom.relation.clone(),
            column,
        })?;
        let nodes: Vec<BitString> = if level < k {
            tree.canonical_partition(iv)
        } else {
            vec![tree.leaf_of_interval(iv)]
        };
        for node in nodes {
            for parts in node.compositions(level) {
                row.clear();
                row.push(tuple_ids[i]);
                row.extend(parts.into_iter().map(|b| dict.intern(Value::Bits(b))));
                out.push_ids(&row);
            }
        }
    }
    out.dedup();
    Ok(out)
}

/// The name and column variables of the transformed relation of one atom
/// under a level assignment for its interval variables.
fn reduced_relation_signature(
    q: &Query,
    atom_idx: usize,
    levels: &BTreeMap<VarId, usize>,
    id_to_name: &BTreeMap<VarId, String>,
    var_ids: &BTreeMap<String, VarId>,
) -> (String, Vec<String>) {
    let atom = &q.atoms()[atom_idx];
    let mut vars: Vec<String> = Vec::new();
    for v in &atom.vars {
        match q.var_kind(v) {
            Some(VarKind::Interval) => {
                let var_id = var_ids[v];
                let level = levels[&var_id];
                for j in 1..=level {
                    vars.push(format!("{v}#{j}"));
                }
            }
            _ => vars.push(v.clone()),
        }
    }
    let mut level_names: Vec<String> = levels
        .iter()
        .map(|(id, l)| format!("{}:{}", id_to_name[id], l))
        .collect();
    level_names.sort();
    let name = format!("{}@{}⟨{}⟩", atom.relation, atom_idx, level_names.join(","));
    (name, vars)
}

/// Builds the transformed relation of one atom under a level assignment
/// (Definition 4.9, applied once per interval variable of the atom).
#[allow(clippy::too_many_arguments)]
fn build_transformed_relation(
    q: &Query,
    db: &Database,
    atom_idx: usize,
    levels: &BTreeMap<VarId, usize>,
    trees: &BTreeMap<VarId, SegmentTree>,
    name: &str,
    var_ids: &BTreeMap<String, VarId>,
    token: Option<&CancellationToken>,
) -> Result<Relation, ReductionError> {
    faults::point("reduction-transform");
    let atom = &q.atoms()[atom_idx];
    let source = db.relation(&atom.relation).expect("validated");
    let hypergraph_k: BTreeMap<VarId, usize> = {
        // Number of atoms containing each interval variable (its `k`).
        let (h, _) = q.hypergraph();
        levels.keys().map(|&v| (v, h.degree(v))).collect()
    };

    // Column plan: carried columns copy their value, interval columns expand
    // into `level` bitstring columns.
    enum ColumnPlan {
        Carried(usize),
        IntervalVar {
            column: usize,
            var: VarId,
            level: usize,
            k: usize,
        },
    }
    let mut plan: Vec<ColumnPlan> = Vec::new();
    let mut arity = 0usize;
    for (col, v) in atom.vars.iter().enumerate() {
        match q.var_kind(v) {
            Some(VarKind::Interval) => {
                let var = var_ids[v];
                let level = levels[&var];
                plan.push(ColumnPlan::IntervalVar {
                    column: col,
                    var,
                    level,
                    k: hypergraph_k[&var],
                });
                arity += level;
            }
            _ => {
                plan.push(ColumnPlan::Carried(col));
                arity += 1;
            }
        }
    }

    let dict = db.dictionary();
    let mut out = Relation::new_in(name.to_string(), arity, dict);
    // Pre-resolve the interval columns once (one dictionary read lock per
    // column); carried columns pass their interned ids through untouched, so
    // the expansion below never materialises a `Value` row.
    let mut interval_cols: BTreeMap<usize, Vec<Option<Interval>>> = BTreeMap::new();
    for p in &plan {
        if let ColumnPlan::IntervalVar { column, .. } = p {
            interval_cols
                .entry(*column)
                .or_insert_with(|| source.column(*column).map(|v| v.to_interval()).collect());
        }
    }
    // Indexed loop: `row_idx` addresses parallel structures (the pre-resolved
    // interval columns and the source id columns).
    let mut ticker = CancelTicker::new(token);
    #[allow(clippy::needless_range_loop)]
    for row_idx in 0..source.len() {
        ticker.tick()?;
        // Per column, the list of id-vectors to append (cross product).
        let mut expansions: Vec<Vec<Vec<ValueId>>> = Vec::with_capacity(plan.len());
        let mut dead = false;
        for p in &plan {
            match p {
                ColumnPlan::Carried(col) => {
                    expansions.push(vec![vec![source.column_ids(*col)[row_idx]]])
                }
                ColumnPlan::IntervalVar {
                    column,
                    var,
                    level,
                    k,
                } => {
                    let iv =
                        interval_cols[column][row_idx].ok_or(ReductionError::NotAnInterval {
                            relation: atom.relation.clone(),
                            column: *column,
                        })?;
                    let tree = &trees[var];
                    let nodes: Vec<BitString> = if *level < *k {
                        tree.canonical_partition(iv)
                    } else {
                        vec![tree.leaf_of_interval(iv)]
                    };
                    let mut options: Vec<Vec<ValueId>> = Vec::new();
                    for node in nodes {
                        for parts in node.compositions(*level) {
                            options.push(
                                parts
                                    .into_iter()
                                    .map(|b| dict.intern(Value::Bits(b)))
                                    .collect(),
                            );
                        }
                    }
                    if options.is_empty() {
                        dead = true;
                        break;
                    }
                    expansions.push(options);
                }
            }
        }
        if dead {
            continue;
        }
        // Cross product of the expansions.
        let mut rows: Vec<Vec<ValueId>> = vec![Vec::with_capacity(arity)];
        for options in &expansions {
            let mut next = Vec::with_capacity(rows.len() * options.len());
            for row in &rows {
                for opt in options {
                    let mut r = row.clone();
                    r.extend_from_slice(opt);
                    next.push(r);
                }
            }
            rows = next;
        }
        for r in rows {
            out.push_ids(&r);
        }
    }
    out.dedup();
    Ok(out)
}

fn validate(q: &Query, db: &Database, h: &Hypergraph) -> Result<(), ReductionError> {
    for atom in q.atoms() {
        let rel = db
            .relation(&atom.relation)
            .ok_or_else(|| ReductionError::MissingRelation(atom.relation.clone()))?;
        if rel.arity() != atom.vars.len() {
            return Err(ReductionError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: atom.vars.len(),
                found: rel.arity(),
            });
        }
        // Interval variables must not repeat within an atom.
        for (i, v) in atom.vars.iter().enumerate() {
            if q.var_kind(v) == Some(VarKind::Interval) && atom.vars[..i].contains(v) {
                return Err(ReductionError::RepeatedIntervalVariable {
                    relation: atom.relation.clone(),
                    variable: v.clone(),
                });
            }
        }
    }
    let _ = h;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::Value;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    /// The Section 1.1 triangle query with a tiny database.
    fn triangle_instance(satisfiable: bool) -> (Query, Database) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        // R, S, T hold intervals; when `satisfiable` the three pairwise
        // intersections exist, otherwise the C-intervals are disjoint.
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        let c_t = if satisfiable {
            iv(24.0, 26.0)
        } else {
            iv(30.0, 31.0)
        };
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), c_t]]);
        (q, db)
    }

    #[test]
    fn triangle_reduction_produces_eight_queries_and_twelve_relations() {
        let (q, db) = triangle_instance(true);
        let fr = forward_reduction(&q, &db).unwrap();
        assert_eq!(fr.queries.len(), 8);
        // Each atom has 2 interval variables with 2 levels each → 4 distinct
        // transformed relations per atom, 12 in total.
        assert_eq!(fr.stats.num_relations, 12);
        assert_eq!(fr.database.num_relations(), 12);
        // Every reduced query references existing relations with matching arity.
        for rq in &fr.queries {
            for atom in &rq.atoms {
                let rel = fr.database.relation(&atom.relation).unwrap();
                assert_eq!(rel.arity(), atom.vars.len());
            }
            // The reduced query is a pure EJ query.
            assert!(rq.to_query().is_ej());
        }
    }

    #[test]
    fn transformed_relations_hold_bitstrings_only() {
        let (q, db) = triangle_instance(true);
        let fr = forward_reduction(&q, &db).unwrap();
        for rel in fr.database.relations() {
            for t in rel.tuples() {
                for v in t {
                    assert!(
                        v.as_bits().is_some(),
                        "non-bitstring value {v:?} in {}",
                        rel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn reduced_relation_sizes_respect_lemma_4_10() {
        // Lemma 4.10: |R̃| = O(|R| · log^i |I|).  With |I| ≤ 2N the height h
        // of the segment tree bounds the number of CP nodes by 2h+2 and the
        // number of compositions of a bitstring into i parts by (h+1)^(i-1).
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        let n = 32;
        let mk = |offset: f64| {
            (0..n)
                .map(|i| {
                    vec![
                        iv(i as f64 + offset, i as f64 + offset + 3.0),
                        iv(i as f64, i as f64 + 5.0),
                    ]
                })
                .collect::<Vec<_>>()
        };
        db.insert_tuples("R", 2, mk(0.0));
        db.insert_tuples("S", 2, mk(1.0));
        db.insert_tuples("T", 2, mk(2.0));
        let fr = forward_reduction(&q, &db).unwrap();
        let height = fr
            .stats
            .variables
            .iter()
            .map(|(_, _, h)| *h as usize)
            .max()
            .unwrap();
        let cp_bound = 2 * height + 2;
        let comp_bound = height + 1;
        // Every transformed relation has at most 2 interval variables, each at
        // level ≤ 2, so the size is bounded by N · (cp_bound · comp_bound)^2.
        let per_var = cp_bound * comp_bound;
        let bound = n * per_var * per_var;
        for rel in fr.database.relations() {
            assert!(
                rel.len() <= bound,
                "relation {} has {} tuples, bound {bound}",
                rel.name(),
                rel.len()
            );
        }
    }

    #[test]
    fn decomposed_encoding_splits_atoms_into_spine_and_parts() {
        let (q, db) = triangle_instance(true);
        let fr = forward_reduction_with(
            &q,
            &db,
            ReductionConfig {
                encoding: EncodingStrategy::Decomposed,
            },
        )
        .unwrap();
        assert_eq!(fr.queries.len(), 8);
        for rq in &fr.queries {
            // Every original atom has two interval variables, so it becomes a
            // spine plus two parts: nine atoms in total.
            assert_eq!(rq.atoms.len(), 9);
            // Every referenced relation exists with matching arity and every
            // part shares its Id variable with its spine.
            for atom in &rq.atoms {
                let rel = fr.database.relation(&atom.relation).unwrap();
                assert_eq!(rel.arity(), atom.vars.len());
            }
            let id_vars: Vec<&String> = rq
                .atoms
                .iter()
                .flat_map(|a| a.vars.iter())
                .filter(|v| v.starts_with("__id:"))
                .collect();
            // Three distinct Id variables, each appearing three times.
            let mut distinct = id_vars.clone();
            distinct.sort();
            distinct.dedup();
            assert_eq!(distinct.len(), 3);
            assert_eq!(id_vars.len(), 9);
        }
    }

    #[test]
    fn decomposed_encoding_is_smaller_on_multi_variable_atoms() {
        // A denser instance: the flat encoding materialises the product of
        // the per-variable expansions, the decomposed one their sum.
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        let n = 24;
        let mk = |offset: f64| {
            (0..n)
                .map(|i| {
                    vec![
                        iv(i as f64 + offset, i as f64 + offset + 4.0),
                        iv(i as f64 * 1.5, i as f64 * 1.5 + 6.0),
                    ]
                })
                .collect::<Vec<_>>()
        };
        db.insert_tuples("R", 2, mk(0.0));
        db.insert_tuples("S", 2, mk(0.5));
        db.insert_tuples("T", 2, mk(1.0));
        let flat = forward_reduction(&q, &db).unwrap();
        let decomposed = forward_reduction_with(
            &q,
            &db,
            ReductionConfig {
                encoding: EncodingStrategy::Decomposed,
            },
        )
        .unwrap();
        assert!(
            decomposed.stats.transformed_tuples < flat.stats.transformed_tuples,
            "decomposed {} >= flat {}",
            decomposed.stats.transformed_tuples,
            flat.stats.transformed_tuples
        );
    }

    #[test]
    fn decomposed_encoding_leaves_single_variable_atoms_flat() {
        // Figure 9d: T([A]) has a single interval variable and keeps the flat
        // relation even under the decomposed encoding.
        let q = Query::parse("R([A],[B],[C]) & S([A],[B],[C]) & T([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 3, vec![vec![iv(0.0, 2.0), iv(0.0, 2.0), iv(0.0, 2.0)]]);
        db.insert_tuples("S", 3, vec![vec![iv(1.0, 3.0), iv(1.0, 3.0), iv(1.0, 3.0)]]);
        db.insert_tuples("T", 1, vec![vec![iv(1.5, 1.8)]]);
        let fr = forward_reduction_with(
            &q,
            &db,
            ReductionConfig {
                encoding: EncodingStrategy::Decomposed,
            },
        )
        .unwrap();
        for rq in &fr.queries {
            // R and S decompose into 1 spine + 3 parts each; T stays flat.
            assert_eq!(rq.atoms.len(), 4 + 4 + 1);
            let t_atoms: Vec<_> = rq
                .atoms
                .iter()
                .filter(|a| a.relation.starts_with("T@"))
                .collect();
            assert_eq!(t_atoms.len(), 1);
            assert!(!t_atoms[0].vars.iter().any(|v| v.starts_with("__id:")));
        }
    }

    #[test]
    fn missing_relation_is_reported() {
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        match forward_reduction(&q, &db) {
            Err(ReductionError::MissingRelation(name)) => assert_eq!(name, "S"),
            other => panic!("expected MissingRelation, got {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let q = Query::parse("R([A],[B])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        assert!(matches!(
            forward_reduction(&q, &db),
            Err(ReductionError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn repeated_interval_variable_is_rejected() {
        let q = Query::parse("R([A],[A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
        assert!(matches!(
            forward_reduction(&q, &db),
            Err(ReductionError::RepeatedIntervalVariable { .. })
        ));
    }

    #[test]
    fn point_values_for_interval_variables_are_accepted() {
        // Membership-style data: point values are treated as point intervals.
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![Value::point(3.0)]]);
        db.insert_tuples("S", 1, vec![vec![iv(0.0, 5.0)]]);
        let fr = forward_reduction(&q, &db).unwrap();
        assert_eq!(fr.queries.len(), 2);
        assert!(fr.stats.transformed_tuples > 0);
    }

    #[test]
    fn carried_point_variables_survive_unchanged() {
        // EIJ query: equality join on X, intersection join on [A].
        let q = Query::parse("R(X,[A]) & S(X,[A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![Value::point(7.0), iv(0.0, 2.0)]]);
        db.insert_tuples("S", 2, vec![vec![Value::point(7.0), iv(1.0, 3.0)]]);
        let fr = forward_reduction(&q, &db).unwrap();
        assert_eq!(fr.queries.len(), 2);
        for rel in fr.database.relations() {
            for t in rel.tuples() {
                // First column carries the point value 7.0.
                assert_eq!(t[0], Value::point(7.0));
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let (q, db) = triangle_instance(true);
        let fr = forward_reduction(&q, &db).unwrap();
        assert_eq!(fr.stats.input_tuples, 3);
        assert_eq!(fr.stats.num_queries, 8);
        assert_eq!(fr.stats.variables.len(), 3);
        assert!(fr.stats.transformed_tuples >= fr.stats.max_relation_tuples);
        assert!(fr.stats.max_relation_tuples > 0);
    }
}
