//! The backward reduction (Section 5, Definition D.2).
//!
//! Given a self-join-free IJ query `Q`, an EJ query `Q̃` whose hypergraph
//! belongs to `τ(H)` and an arbitrary database `D̃` of bitstrings over the
//! schema of `Q̃`, the backward reduction builds a database `D` of intervals
//! over the schema of `Q` with `|D| = |D̃|` such that `Q(D)` holds iff
//! `Q̃(D̃)` holds.  Combined with the forward reduction this shows the
//! reduction is *tight*: the IJ query is exactly as hard as the hardest EJ
//! query of the disjunction (Theorem 5.2).
//!
//! Each tuple of a reduced relation holds, for every original interval
//! variable of level `ℓ`, the bitstrings `X#1 … X#ℓ`; the backward reduction
//! concatenates them and maps the result through the dyadic embedding `F`
//! (Example 5.1): prefix-related bitstrings map to nested intervals,
//! unrelated bitstrings to disjoint ones.

use crate::forward::ReducedQuery;
use ij_hypergraph::VarKind;
use ij_relation::{Database, Query, Relation, Value};
use ij_segtree::{BitString, DyadicEmbedding};

/// Errors raised by the backward reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackwardError {
    /// The original query has a self-join, which Theorem 5.2 excludes.
    SelfJoin,
    /// A relation of the reduced query is missing from the EJ database.
    MissingRelation(String),
    /// A column that should hold a bitstring holds something else.
    NotABitString { relation: String, column: usize },
    /// The concatenated bitstrings are too long for the dyadic embedding.
    BitstringTooLong { relation: String, length: usize },
}

impl std::fmt::Display for BackwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackwardError::SelfJoin => {
                write!(f, "the backward reduction requires a self-join-free query")
            }
            BackwardError::MissingRelation(r) => {
                write!(f, "relation `{r}` missing from the EJ database")
            }
            BackwardError::NotABitString { relation, column } => {
                write!(
                    f,
                    "relation `{relation}` column {column} does not hold a bitstring"
                )
            }
            BackwardError::BitstringTooLong { relation, length } => {
                write!(f, "concatenated bitstring of length {length} in `{relation}` exceeds the embedding depth")
            }
        }
    }
}

impl std::error::Error for BackwardError {}

/// Maps an EJ database over the schema of `reduced` (one of the queries
/// produced by [`crate::forward_reduction`] on `original`) back to an interval
/// database over the schema of `original`.
///
/// `ej_db` must contain one relation per reduced atom, named like the reduced
/// atom's relation, with bitstring values in the reduction-introduced columns
/// and arbitrary values in carried columns.
pub fn backward_reduction(
    original: &Query,
    reduced: &ReducedQuery,
    ej_db: &Database,
) -> Result<Database, BackwardError> {
    if !original.is_self_join_free() {
        return Err(BackwardError::SelfJoin);
    }

    // Determine the dyadic embedding depth: the longest concatenated
    // bitstring any tuple produces for any interval variable.
    let mut max_len: usize = 1;
    for (atom_idx, atom) in reduced.atoms.iter().enumerate() {
        let rel = ej_db
            .relation(&atom.relation)
            .ok_or_else(|| BackwardError::MissingRelation(atom.relation.clone()))?;
        let groups = column_groups_for_atom(original, &original.atoms()[atom_idx], atom);
        for t in rel.tuples() {
            for (cols, kind) in &groups {
                if *kind != VarKind::Interval {
                    continue;
                }
                let mut len = 0usize;
                for &c in cols {
                    let b = t[c].as_bits().ok_or(BackwardError::NotABitString {
                        relation: atom.relation.clone(),
                        column: c,
                    })?;
                    len += b.len() as usize;
                }
                max_len = max_len.max(len);
            }
        }
    }
    if max_len > ij_segtree::DYADIC_MAX_DEPTH as usize {
        return Err(BackwardError::BitstringTooLong {
            relation: "<any>".to_string(),
            length: max_len,
        });
    }
    let embedding = DyadicEmbedding::new(max_len as u8);

    let mut out = Database::new();
    for (atom_idx, reduced_atom) in reduced.atoms.iter().enumerate() {
        let original_atom = &original.atoms()[atom_idx];
        let rel = ej_db
            .relation(&reduced_atom.relation)
            .ok_or_else(|| BackwardError::MissingRelation(reduced_atom.relation.clone()))?;
        let groups = column_groups_for_atom(original, original_atom, reduced_atom);
        let mut new_rel = Relation::new(original_atom.relation.clone(), original_atom.vars.len());
        for t in rel.tuples() {
            let mut row: Vec<Value> = Vec::with_capacity(original_atom.vars.len());
            for (cols, kind) in &groups {
                match kind {
                    VarKind::Interval => {
                        let parts: Result<Vec<BitString>, BackwardError> = cols
                            .iter()
                            .map(|&c| {
                                t[c].as_bits().ok_or(BackwardError::NotABitString {
                                    relation: reduced_atom.relation.clone(),
                                    column: c,
                                })
                            })
                            .collect();
                        let concat = BitString::concat_all(parts?);
                        row.push(Value::Interval(embedding.interval(concat)));
                    }
                    VarKind::Point => {
                        // Carried point variable: exactly one column.
                        row.push(t[cols[0]]);
                    }
                }
            }
            new_rel.push(row);
        }
        out.insert(new_rel);
    }
    Ok(out)
}

/// For each column of the original atom (in order): the reduced-atom columns
/// realising it and the variable kind.
fn column_groups_for_atom(
    original: &Query,
    original_atom: &ij_relation::Atom,
    reduced_atom: &crate::forward::ReducedAtom,
) -> Vec<(Vec<usize>, VarKind)> {
    let mut groups = Vec::with_capacity(original_atom.vars.len());
    let mut cursor = 0usize;
    for v in &original_atom.vars {
        match original.var_kind(v) {
            Some(VarKind::Interval) => {
                // The reduced columns for `v` are the consecutive run of
                // columns named `v#1`, `v#2`, ...
                let mut cols = Vec::new();
                while cursor < reduced_atom.vars.len()
                    && reduced_atom.vars[cursor].starts_with(&format!("{v}#"))
                {
                    cols.push(cursor);
                    cursor += 1;
                }
                groups.push((cols, VarKind::Interval));
            }
            _ => {
                groups.push((vec![cursor], VarKind::Point));
                cursor += 1;
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward_reduction;
    use ij_relation::Value;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    fn bits(s: &str) -> Value {
        Value::Bits(BitString::parse(s).unwrap())
    }

    /// Builds the triangle reduction structure (we only need the query
    /// shapes, so any small interval database will do).
    fn triangle_reduction() -> (Query, crate::forward::ForwardReduction) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
        db.insert_tuples("S", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
        db.insert_tuples("T", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
        let fr = forward_reduction(&q, &db).unwrap();
        (q, fr)
    }

    #[test]
    fn backward_reduction_preserves_size_and_schema() {
        let (q, fr) = triangle_reduction();
        let reduced = &fr.queries[0];
        // Build an arbitrary EJ database over the reduced schema with
        // fixed-length (2-bit) values.
        let mut ej_db = Database::new();
        for atom in &reduced.atoms {
            let arity = atom.vars.len();
            let mut rel = Relation::new(atom.relation.clone(), arity);
            rel.push(
                (0..arity)
                    .map(|i| bits(if i % 2 == 0 { "01" } else { "10" }))
                    .collect(),
            );
            rel.push((0..arity).map(|_| bits("11")).collect());
            ej_db.insert(rel);
        }
        let d2 = backward_reduction(&q, reduced, &ej_db).unwrap();
        assert_eq!(d2.num_relations(), 3);
        assert_eq!(d2.total_tuples(), ej_db.total_tuples());
        for atom in q.atoms() {
            let rel = d2.relation(&atom.relation).unwrap();
            assert_eq!(rel.arity(), atom.vars.len());
            for t in rel.tuples() {
                for v in t {
                    assert!(v.as_interval().is_some());
                }
            }
        }
    }

    #[test]
    fn prefix_relations_become_containment() {
        // Example 5.1: values that are prefixes of one another map to nested
        // intervals; unrelated values map to disjoint intervals.
        let (q, fr) = triangle_reduction();
        let reduced = &fr.queries[0];
        let mut ej_db = Database::new();
        for atom in &reduced.atoms {
            let arity = atom.vars.len();
            let mut rel = Relation::new(atom.relation.clone(), arity);
            rel.push((0..arity).map(|_| bits("0")).collect());
            rel.push((0..arity).map(|_| bits("1")).collect());
            ej_db.insert(rel);
        }
        let d2 = backward_reduction(&q, reduced, &ej_db).unwrap();
        for atom in q.atoms() {
            let rel = d2.relation(&atom.relation).unwrap();
            // Within one relation, tuples built from "0..." and "1..." yield
            // disjoint intervals in each column.
            let a = rel.tuples()[0][0].as_interval().unwrap();
            let b = rel.tuples()[1][0].as_interval().unwrap();
            assert!(!a.intersects(b));
        }
    }

    #[test]
    fn self_joins_are_rejected() {
        let q = Query::parse("R([A],[B]) & R([B],[C])").unwrap();
        let (q_tri, fr) = triangle_reduction();
        let _ = q_tri;
        assert_eq!(
            backward_reduction(&q, &fr.queries[0], &Database::new()),
            Err(BackwardError::SelfJoin)
        );
    }

    #[test]
    fn missing_relation_is_reported() {
        let (q, fr) = triangle_reduction();
        let err = backward_reduction(&q, &fr.queries[0], &Database::new());
        assert!(matches!(err, Err(BackwardError::MissingRelation(_))));
    }

    #[test]
    fn non_bitstring_values_are_reported() {
        let (q, fr) = triangle_reduction();
        let reduced = &fr.queries[0];
        let mut ej_db = Database::new();
        for atom in &reduced.atoms {
            let arity = atom.vars.len();
            let mut rel = Relation::new(atom.relation.clone(), arity);
            rel.push((0..arity).map(|_| Value::point(1.0)).collect());
            ej_db.insert(rel);
        }
        assert!(matches!(
            backward_reduction(&q, reduced, &ej_db),
            Err(BackwardError::NotABitString { .. })
        ));
    }
}
