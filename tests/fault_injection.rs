//! Fault-injection hardening tests (the `failpoints` feature).
//!
//! The pipeline is instrumented with named failpoint sites
//! (`ij_engine::faults`): `reduction-transform` in the forward reduction's
//! per-relation transform, `trie-build` at every trie construction,
//! `cache-insert` inside the shared trie cache's accounting section, and
//! `shard-worker` inside the sharded-build isolation boundary.  These tests
//! arm each site with deterministic panic and delay schedules and assert the
//! robustness contract:
//!
//! * an evaluation under fault returns the **correct answer or a typed
//!   error** ([`EvalError::WorkerPanicked`] for injected panics) — never a
//!   wrong answer, never a raw panic on the caller, never a hang (every
//!   faulted run is watchdog-bounded);
//! * after [`faults::clear`], a clean evaluation **on the same workspace**
//!   returns the correct answer, and a second clean run serves entirely from
//!   the shared trie cache (zero misses) — an injected panic never leaves a
//!   poisoned lock or a half-built cache entry behind.
//!
//! The failpoint registry is process-global, so every test serialises on one
//! mutex.  Run with `cargo test --features failpoints --test fault_injection`
//! (CI runs it in `--release` under a hard timeout); without the feature this
//! file compiles to an empty test binary.
#![cfg(feature = "failpoints")]

use ij_engine::faults::{self, FaultAction};
use ij_engine::{EngineConfig, EngineError, EvalError, Workspace};
use ij_relation::Query;
use ij_workloads::{
    build_scenario, planted_unsatisfiable, IntervalDistribution, PlantedAnswer, ScenarioConfig,
    ScenarioFamily, WorkloadConfig,
};
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use std::time::Duration;

/// Sites exercised by the small-scenario sweep.  `shard-worker` needs a
/// relation large enough to pass the sharding threshold and has its own
/// dedicated test below.
const SWEEP_SITES: [&str; 3] = ["reduction-transform", "trie-build", "cache-insert"];

/// The failpoint registry is process-global: all tests serialise here.
fn serial() -> ij_relation::sync::LockGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    ij_relation::sync::lock_recover(&LOCK, "fault-test-serial")
}

/// Installs (once) a panic hook that silences injected failpoint panics —
/// they are expected by the dozens here — while leaving every other panic's
/// diagnostics intact.
fn hush_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                prev(info);
            }
        }));
    });
}

/// Runs `f` on its own thread and panics if it neither returns nor panics
/// within the watchdog bound — the "never hang" half of the contract.
fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(value) => value,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: evaluation hung past the 120 s watchdog bound")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{label}: evaluation escaped as a raw panic instead of a typed error")
        }
    }
}

/// One fault case, end to end, on a fresh workspace: arm `site`, evaluate
/// (watchdog-bounded), check correct-or-typed-error, then clear and verify
/// the same workspace still produces the correct answer with a consistent
/// cache (second clean run all-hits).
fn run_case(family: ScenarioFamily, site: &'static str, after: usize, action: FaultAction) {
    let label = format!("{family:?}/{site}/after={after}/{action:?}");
    let outcome = with_watchdog(&label, move || {
        let cfg = ScenarioConfig::new(family)
            .with_tuples(12)
            .with_seed(0)
            .with_planted(PlantedAnswer::Unsatisfiable);
        let scenario = build_scenario(&cfg);
        let ws = Workspace::new();
        let db = ws.import_database(&scenario.database);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));

        faults::clear();
        faults::configure(site, after, action);
        let faulted = engine.evaluate_with_stats(&scenario.query, &db);
        let fired = faults::hits(site) > after;
        faults::clear();

        // Recovery on the same workspace: correct answer, then a warm run
        // served entirely from the shared cache.
        let clean = engine
            .evaluate_with_stats(&scenario.query, &db)
            .expect("clean evaluation after a cleared fault succeeds");
        let warm = engine
            .evaluate_with_stats(&scenario.query, &db)
            .expect("warm evaluation succeeds");
        (faulted, fired, clean, warm)
    });
    let (faulted, fired, clean, warm) = outcome;

    // The planted answer is unsatisfiable: every successful run must say so.
    match (&faulted, action) {
        (Ok(stats), _) => assert!(!stats.answer, "{label}: faulted run answered true"),
        (Err(EngineError::Evaluation(EvalError::WorkerPanicked { .. })), FaultAction::Panic) => {}
        (Err(e), FaultAction::Panic) => {
            panic!("{label}: injected panic surfaced as {e:?}, expected WorkerPanicked")
        }
        (Err(e), FaultAction::Delay(_)) => {
            panic!("{label}: a deadline-free delay must not fail, got {e:?}")
        }
    }
    if fired && matches!(action, FaultAction::Panic) {
        assert!(
            faulted.is_err(),
            "{label}: the armed panic fired but the evaluation reported success"
        );
    }
    assert!(
        !clean.answer,
        "{label}: clean run after fault answered true"
    );
    assert!(!warm.answer, "{label}: warm run answered true");
    assert_eq!(
        warm.trie_cache.misses, 0,
        "{label}: the fault left the shared cache inconsistent (warm run rebuilt: {:?})",
        warm.trie_cache
    );
}

/// Every sweep site actually executes somewhere in the sweep — otherwise the
/// panic sweep below would be vacuous.  `reduction-transform` fires on every
/// family; the trie sites fire only on families whose disjuncts take the
/// generic-WCOJ path (acyclic queries go through Yannakakis and build no
/// tries), so those are asserted over the union of families.
#[test]
fn sweep_sites_fire_across_the_families() {
    let _guard = serial();
    let mut union: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for family in ScenarioFamily::ALL {
        let cfg = ScenarioConfig::new(family)
            .with_tuples(12)
            .with_seed(0)
            .with_planted(PlantedAnswer::Unsatisfiable);
        let scenario = build_scenario(&cfg);
        let ws = Workspace::new();
        let db = ws.import_database(&scenario.database);
        faults::clear();
        let stats = ws
            .engine(EngineConfig::new().with_parallelism(1))
            .evaluate_with_stats(&scenario.query, &db)
            .expect("clean probe succeeds");
        assert!(!stats.answer, "{family:?}: planted-unsatisfiable probe");
        assert!(
            faults::hits("reduction-transform") > 0,
            "{family:?}: the forward reduction never reached its failpoint"
        );
        for site in SWEEP_SITES {
            *union.entry(site).or_default() += faults::hits(site);
        }
        faults::clear();
    }
    for site in SWEEP_SITES {
        assert!(
            union.get(site).copied().unwrap_or(0) > 0,
            "site `{site}` never executed on any family — the sweep would be vacuous"
        );
    }
}

/// Injected panics at every site × family × early/late occurrence surface as
/// [`EvalError::WorkerPanicked`] (never a wrong answer, never a raw panic),
/// and the workspace stays fully usable afterwards.
#[test]
fn injected_panics_surface_as_typed_errors_and_workspaces_recover() {
    let _guard = serial();
    hush_injected_panics();
    for family in ScenarioFamily::ALL {
        for site in SWEEP_SITES {
            for after in [0, 2] {
                run_case(family, site, after, FaultAction::Panic);
            }
        }
    }
}

/// Injected delays (a stalled worker) without a deadline only slow the
/// evaluation down: the answer is still correct and the cache still warms.
#[test]
fn injected_delays_never_change_answers() {
    let _guard = serial();
    for family in ScenarioFamily::ALL {
        for site in SWEEP_SITES {
            run_case(
                family,
                site,
                0,
                FaultAction::Delay(Duration::from_millis(2)),
            );
        }
    }
}

/// A worker stalled long past the engine's deadline trips
/// [`EvalError::DeadlineExceeded`] at the next cancellation checkpoint
/// instead of hanging the evaluation.
#[test]
fn stalled_worker_trips_the_deadline() {
    let _guard = serial();
    let result = with_watchdog("stalled-transform", || {
        let cfg = ScenarioConfig::new(ScenarioFamily::TemporalOverlap)
            .with_tuples(12)
            .with_seed(0)
            .with_planted(PlantedAnswer::Unsatisfiable);
        let scenario = build_scenario(&cfg);
        let ws = Workspace::new();
        let db = ws.import_database(&scenario.database);
        let engine = ws.engine(
            EngineConfig::new()
                .with_parallelism(1)
                .with_deadline(Duration::from_millis(20)),
        );
        faults::clear();
        faults::configure(
            "reduction-transform",
            0,
            FaultAction::Delay(Duration::from_millis(200)),
        );
        let faulted = engine.evaluate_with_stats(&scenario.query, &db);
        faults::clear();
        faulted
    });
    match result {
        Err(EngineError::Evaluation(EvalError::DeadlineExceeded { elapsed, budget })) => {
            assert!(
                elapsed >= budget,
                "reported elapsed {elapsed:?} below budget {budget:?}"
            );
        }
        other => panic!("stalled transform under a 20 ms deadline returned {other:?}"),
    }
}

/// The `shard-worker` site fires only once a relation passes the sharding
/// threshold; a panic inside one shard builder is caught at the isolation
/// boundary, cancels its sibling shards, surfaces as `WorkerPanicked` naming
/// the atom — and the shared cache never retains the half-built entry.
#[test]
fn sharded_build_panics_are_isolated_and_leave_the_cache_consistent() {
    let _guard = serial();
    hush_injected_panics();
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
    let tuples = 2_500; // ≥ 2 × MIN_ROWS_PER_SHARD after the transform
    let workload = planted_unsatisfiable(
        &query,
        &WorkloadConfig {
            tuples_per_relation: tuples,
            seed: 7,
            distribution: IntervalDistribution::GridAligned {
                span: 4.0 * tuples as f64,
                cells: (2 * tuples) as u32,
                max_cells: 3,
            },
        },
    );
    let (faulted, fired, clean, warm) = with_watchdog("shard-worker", move || {
        let ws = Workspace::new();
        let db = ws.import_database(&workload);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1).with_trie_shards(2));
        faults::clear();
        faults::configure("shard-worker", 0, FaultAction::Panic);
        let faulted = engine.evaluate(&query, &db);
        let fired = faults::hits("shard-worker") > 0;
        faults::clear();
        let clean = engine
            .evaluate_with_stats(&query, &db)
            .expect("clean evaluation after the shard panic succeeds");
        let warm = engine
            .evaluate_with_stats(&query, &db)
            .expect("warm evaluation succeeds");
        (faulted, fired, clean, warm)
    });
    assert!(
        fired,
        "the sharded build never reached the shard-worker site"
    );
    match faulted {
        Err(EngineError::Evaluation(EvalError::WorkerPanicked { atom, payload })) => {
            assert!(
                payload.contains("failpoint"),
                "unexpected panic payload: {payload}"
            );
            assert!(!atom.is_empty());
        }
        other => panic!("shard panic surfaced as {other:?}, expected WorkerPanicked"),
    }
    assert!(
        !clean.answer,
        "planted-unsatisfiable workload answered true"
    );
    assert_eq!(
        warm.trie_cache.misses, 0,
        "the shard panic left a half-built cache entry behind: {:?}",
        warm.trie_cache
    );
}
