//! Cross-crate regression tests for the paper's headline analytic results.
//!
//! * Table 1 / Table 2: ij-widths of the triangle (3/2), Loomis–Whitney-4
//!   (5/3) and 4-clique (2) IJ queries;
//! * Section 1.1 / Figure 2: the 8 EJ queries of the triangle reduction and
//!   their star decomposition with central bag {A1, B1, C1};
//! * Figure 3: the segment tree over I = {[1,4], [3,4]};
//! * Figure 5: the strict inclusions between the acyclicity classes;
//! * Example 6.5 / Figure 9 / Appendix E.4: classification and widths;
//! * Appendix F: the number of isomorphism classes of the reduced queries.

use ij_hypergraph::*;
use ij_segtree::{BitString, Interval, SegmentTree};
use ij_widths::*;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-6
}

#[test]
fn table_1_ij_widths() {
    assert!(close(ij_width(&triangle_ij()).value, 1.5));
    assert!(close(ij_width(&loomis_whitney_4_ij()).value, 5.0 / 3.0));
    assert!(close(ij_width(&four_clique_ij()).value, 2.0));
}

#[test]
fn table_1_ej_counterparts_are_cheaper_or_equal() {
    // The submodular widths of the EJ counterparts: triangle 3/2 (equal),
    // LW4 4/3 (< 5/3), 4-clique 2 (equal) — the comparison discussed in the
    // introduction.
    assert!(close(submodular_width_estimate(&triangle_ej()).value, 1.5));
    assert!(close(
        submodular_width_estimate(&loomis_whitney_4_ej()).upper,
        4.0 / 3.0
    ));
    assert!(close(
        submodular_width_estimate(&four_clique_ej()).value,
        2.0
    ));
}

#[test]
fn section_1_1_triangle_reduction_structure() {
    // Eight EJ queries; after dropping singleton variables each collapses to
    // the EJ triangle {A1,B1,C1}, whose fhtw is 3/2 — the star decomposition
    // with central bag {A1,B1,C1} of Figure 2.
    let reduced = full_reduction(&triangle_ij());
    assert_eq!(reduced.len(), 8);
    for r in &reduced {
        let dropped = r.hypergraph.drop_singleton_vertices();
        assert!(are_isomorphic(&dropped, &triangle_ej()));
        assert!(close(fractional_hypertree_width(&dropped), 1.5));
        // The full reduced query admits a decomposition of width 3/2 as well.
        assert!(close(fractional_hypertree_width(&r.hypergraph), 1.5));
    }
}

#[test]
fn figure_3_segment_tree() {
    let tree = SegmentTree::build(&[Interval::new(1.0, 4.0), Interval::new(3.0, 4.0)]);
    let bs = |s: &str| BitString::parse(s).unwrap();
    let cp1: Vec<BitString> = tree.canonical_partition(Interval::new(1.0, 4.0));
    let cp2: Vec<BitString> = tree.canonical_partition(Interval::new(3.0, 4.0));
    assert_eq!(cp1.len(), 3);
    assert!(cp1.contains(&bs("001")) && cp1.contains(&bs("01")) && cp1.contains(&bs("10")));
    assert_eq!(cp2.len(), 2);
    assert!(cp2.contains(&bs("011")) && cp2.contains(&bs("10")));
}

#[test]
fn figure_5_acyclicity_inclusions_are_strict() {
    // Berge ⊂ iota: Figure 9f is iota- but not Berge-acyclic.
    assert!(is_iota_acyclic(&figure_9f()) && !is_berge_acyclic(&figure_9f()));
    // iota ⊂ gamma: the triple edge {x,y,z} x3 (proof of Corollary 6.4).
    let mut triple = Hypergraph::new();
    let x = triple.add_interval_var("X");
    let y = triple.add_interval_var("Y");
    let z = triple.add_interval_var("Z");
    for label in ["R", "S", "T"] {
        triple.add_edge(label, vec![x, y, z]);
    }
    assert!(is_gamma_acyclic(&triple) && !is_iota_acyclic(&triple));
    // gamma ⊂ alpha: the pattern {{x,y},{x,z},{x,y,z}}.
    let mut g = Hypergraph::new();
    let x = g.add_interval_var("X");
    let y = g.add_interval_var("Y");
    let z = g.add_interval_var("Z");
    g.add_edge("R", vec![x, y]);
    g.add_edge("S", vec![x, z]);
    g.add_edge("T", vec![x, y, z]);
    assert!(is_alpha_acyclic(&g) && !is_gamma_acyclic(&g));
    // alpha ⊂ all: the triangle.
    assert!(!is_alpha_acyclic(&triangle_ij()));
}

#[test]
fn example_6_5_and_figure_9() {
    // Figure 9a-9c: alpha-acyclic, not iota-acyclic, ijw = 3/2.
    for h in [figure_9a(), figure_9b(), figure_9c()] {
        assert!(is_alpha_acyclic(&h));
        assert!(!is_iota_acyclic(&h));
        assert!(close(ij_width(&h).value, 1.5));
    }
    // Figure 9d-9f: iota-acyclic, ijw = 1 (near-linear time).
    for h in [figure_9d(), figure_9e(), figure_9f()] {
        assert!(is_iota_acyclic(&h));
        assert!(ij_width(&h).is_linear_time());
    }
    // Example 6.5: number of reduced hypergraphs for Figures 4a/4b.
    assert_eq!(full_reduction(&figure_4a()).len(), 24);
    assert_eq!(full_reduction(&figure_4b()).len(), 12);
}

#[test]
fn appendix_e4_class_counts() {
    let r9a = ij_width(&figure_9a());
    assert_eq!(r9a.num_reduced_queries, 216);
    assert_eq!(r9a.num_distinct_after_dropping_singletons, 27);
    assert_eq!(r9a.classes.len(), 3);

    let r9b = ij_width(&figure_9b());
    assert_eq!(r9b.num_reduced_queries, 72);
    assert_eq!(r9b.num_distinct_after_dropping_singletons, 9);

    let r9c = ij_width(&figure_9c());
    assert_eq!(r9c.num_reduced_queries, 24);
    assert_eq!(r9c.num_distinct_after_dropping_singletons, 3);
}

#[test]
fn appendix_f_class_counts_and_widths() {
    // LW4: 1296 reduced queries, 81 distinct, 6 classes, widths
    // {1.5, 5/3, 1.5, 1.5, 1.5, 1.5}; the bottleneck class has width 5/3.
    let lw4 = ij_width(&loomis_whitney_4_ij());
    assert_eq!(lw4.num_distinct_after_dropping_singletons, 81);
    assert_eq!(lw4.classes.len(), 6);
    let mut widths: Vec<f64> = lw4.classes.iter().map(|c| c.subw.value).collect();
    widths.sort_by(f64::total_cmp);
    assert!(close(widths[5], 5.0 / 3.0));
    assert!(widths[..5].iter().all(|&w| close(w, 1.5)));

    // 4-clique: 1296 reduced queries, 81 distinct, 6 classes, all width 2.
    let clique = ij_width(&four_clique_ij());
    assert_eq!(clique.num_distinct_after_dropping_singletons, 81);
    assert_eq!(clique.classes.len(), 6);
    assert!(clique.classes.iter().all(|c| close(c.subw.value, 2.0)));
}

#[test]
fn appendix_f_lw4_class_1_separates_fhtw_and_subw() {
    // The class isomorphic to the 4-cycle-like query (27) has fhtw 2 but
    // submodular width 3/2 — the separation the paper highlights.
    let lw4 = ij_width(&loomis_whitney_4_ij());
    let separated = lw4
        .classes
        .iter()
        .find(|c| close(c.fhtw, 2.0) && close(c.subw.value, 1.5))
        .expect("LW4 class 1 present");
    assert!(separated.subw.is_exact());
}

#[test]
fn theorem_6_6_dichotomy_classification() {
    // iota-acyclic ⟺ ijw = 1 on the catalog of IJ queries.
    for entry in named_catalog() {
        let h = &entry.hypergraph;
        if !h.is_ij() {
            continue;
        }
        let report = ij_width(h);
        assert_eq!(
            is_iota_acyclic(h),
            report.is_linear_time(),
            "{}: iota-acyclicity and linear-time ij-width disagree",
            entry.name
        );
    }
}
