//! Differential testing over the interval-native scenario suite.
//!
//! Three independent evaluation paths are held to identical answers on every
//! cell of a scenario sweep:
//!
//! 1. the reduction-based engine (forward reduction → equality joins), swept
//!    across `plan_mode` × `trie_layout` × `trie_shards` × cache-capacity
//!    settings,
//! 2. the segment-tree baseline (`SegtreeBaseline`: per-column flat segment
//!    trees + backtracking, no reduction),
//! 3. the naive exhaustive oracle.
//!
//! The sweep covers all four [`ScenarioFamily`] generators × sizes × planted
//! modes.  On a divergence the failing [`ScenarioConfig`] is *shrunk*
//! deterministically (the vendored proptest reports but does not shrink, so
//! minimisation lives here): smaller tuple counts, zero skew and full
//! selectivity are retried while the divergence persists, and the panic
//! message carries the minimal reproducing config.
//!
//! Debug builds shrink sizes and seed ranges (`scaled_tuples` /
//! `scaled_seeds`, mirroring `tests/forward_reduction.rs`) so tier-1 debug
//! time stays bounded; release builds run the full sweep.

use ij_baselines::SegtreeBaseline;
use ij_engine::{
    naive_boolean, naive_count, EngineConfig, IntersectionJoinEngine, PlanMode, TrieLayout,
};
use ij_reduction::forward_reduction;
use ij_workloads::{build_scenario, PlantedAnswer, Scenario, ScenarioConfig, ScenarioFamily};
use proptest::prelude::*;

/// Engine-config axes of the sweep (ISSUE acceptance: ≥ 4 families ×
/// {Hash, Flat, Auto} × ≥ 2 shard counts × {off, small, large} caches,
/// each under both plan modes).  Debug builds drop the middle (small-cache)
/// capacity; release sweeps all three.  The `Fixed` plan mode — the
/// historical identifier order, kept as the planner's differential
/// baseline — runs the layout × shard grid at the large cache only, which
/// is where plan-dependent trie reuse could plausibly diverge.
const LAYOUTS: [TrieLayout; 3] = [TrieLayout::Hash, TrieLayout::Flat, TrieLayout::Auto];
const SHARD_COUNTS: [usize; 2] = [1, 3];
const CACHE_CAPACITIES: [usize; 3] = [0, 2, 4096];
const PLAN_MODES: [PlanMode; 2] = [PlanMode::Adaptive, PlanMode::Fixed];

fn cache_capacities() -> &'static [usize] {
    if cfg!(debug_assertions) {
        &[0, 4096]
    } else {
        &CACHE_CAPACITIES
    }
}

/// Witness-count cross-checks (enumeration mode) run only below this size —
/// `naive_count` has no early exit.
const COUNT_CHECK_MAX_TUPLES: usize = 14;

fn scaled_tuples(tuples: usize) -> usize {
    if cfg!(debug_assertions) {
        tuples.div_ceil(3).max(4)
    } else {
        tuples
    }
}

fn scaled_seeds(seeds: std::ops::Range<u64>) -> std::ops::Range<u64> {
    if cfg!(debug_assertions) {
        let len = seeds.end.saturating_sub(seeds.start);
        seeds.start..seeds.start + (len / 4).max(2).min(len)
    } else {
        seeds
    }
}

/// Evaluates every path on the scenario of `cfg` and returns a description
/// of the first disagreement (None = all paths agree and planted
/// expectations hold).
fn divergence(cfg: &ScenarioConfig) -> Option<String> {
    let scenario = build_scenario(cfg);
    let expected =
        naive_boolean(&scenario.query, &scenario.database).expect("naive evaluation succeeds");

    match cfg.planted {
        PlantedAnswer::Satisfiable if !expected => {
            return Some("planted-satisfiable scenario is unsatisfiable".to_string());
        }
        PlantedAnswer::Unsatisfiable if expected => {
            return Some("planted-unsatisfiable scenario is satisfiable".to_string());
        }
        PlantedAnswer::NearMiss if expected => {
            return Some("planted-near-miss scenario is satisfiable".to_string());
        }
        _ => {}
    }

    let baseline =
        SegtreeBaseline::build(&scenario.query, &scenario.database).expect("baseline builds");
    if baseline.evaluate_boolean() != expected {
        return Some(format!(
            "segtree baseline answered {}, naive answered {expected}",
            !expected
        ));
    }

    if cfg.tuples_per_relation <= COUNT_CHECK_MAX_TUPLES {
        let naive_witnesses =
            naive_count(&scenario.query, &scenario.database).expect("naive count succeeds");
        let baseline_witnesses = baseline.count_witnesses();
        if baseline_witnesses != naive_witnesses {
            return Some(format!(
                "segtree baseline counted {baseline_witnesses} witnesses, naive counted {naive_witnesses}"
            ));
        }
    }

    if let Some(mismatch) = engine_divergence(&scenario, expected) {
        return Some(mismatch);
    }
    None
}

/// Sweeps the engine-config grid on one scenario; the forward reduction is
/// computed once and re-evaluated under every plan-mode/layout/shard/cache
/// setting.
fn engine_divergence(scenario: &Scenario, expected: bool) -> Option<String> {
    let reduction =
        forward_reduction(&scenario.query, &scenario.database).expect("forward reduction succeeds");
    for plan in PLAN_MODES {
        // Fixed is the historical-order baseline; it sweeps layouts × shards
        // at the large cache only (the plan-sensitive cell), while Adaptive —
        // the default — runs the full cache axis.
        let capacities: &[usize] = match plan {
            PlanMode::Adaptive => cache_capacities(),
            PlanMode::Fixed => &[4096],
        };
        for layout in LAYOUTS {
            for shards in SHARD_COUNTS {
                for &capacity in capacities {
                    let engine = IntersectionJoinEngine::new(
                        EngineConfig::new()
                            .with_trie_layout(layout)
                            .with_trie_shards(shards)
                            .with_trie_cache_capacity(capacity)
                            .with_plan_mode(plan),
                    );
                    let stats = engine
                        .evaluate_reduction(&reduction)
                        .expect("uncancelled evaluation succeeds");
                    if stats.answer != expected {
                        return Some(format!(
                            "engine ({plan} plan, {layout:?}, {shards} shards, cache {capacity}) \
                             answered {}, naive answered {expected}",
                            stats.answer
                        ));
                    }
                    // A warm repeat from this engine's own cache must agree
                    // too (checked once per plan/layout/shard triple, at the
                    // large cache).
                    if capacity == 4096 {
                        let warm = engine
                            .evaluate_reduction(&reduction)
                            .expect("uncancelled evaluation succeeds");
                        if warm.answer != expected {
                            return Some(format!(
                                "warm engine ({plan} plan, {layout:?}, {shards} shards, \
                                 cache {capacity}) answered {}, naive answered {expected}",
                                warm.answer
                            ));
                        }
                    }
                }
            }
        }
    }
    None
}

/// Deterministic parameter shrinking: retries strictly simpler configs while
/// the divergence persists.  Tuple counts shrink fastest (halving, then
/// decrement), then skew is zeroed and selectivity maximised.  The planted
/// mode and family are part of the failure's identity and never shrink.
fn minimise(start: ScenarioConfig, diverges: &dyn Fn(&ScenarioConfig) -> bool) -> ScenarioConfig {
    let mut cfg = start;
    loop {
        let mut candidates: Vec<ScenarioConfig> = Vec::new();
        let n = cfg.tuples_per_relation;
        if n > 1 {
            candidates.push(cfg.with_tuples(n / 2));
            candidates.push(cfg.with_tuples(n - 1));
        }
        if cfg.skew != 0.0 {
            candidates.push(cfg.with_skew(0.0));
        }
        if cfg.selectivity != 1.0 {
            candidates.push(cfg.with_selectivity(1.0));
        }
        match candidates.into_iter().find(|c| diverges(c)) {
            Some(simpler) => cfg = simpler,
            None => return cfg,
        }
    }
}

/// Checks one config; on divergence, shrinks it and panics with both the
/// original and the minimal reproducing config.
fn check_config(cfg: &ScenarioConfig) {
    let Some(failure) = divergence(cfg) else {
        return;
    };
    let minimal = minimise(*cfg, &|c| divergence(c).is_some());
    let minimal_failure = divergence(&minimal).unwrap_or_else(|| failure.clone());
    panic!(
        "differential divergence: {failure}\n  original config: {cfg:?}\n  \
         minimal repro:   {minimal:?}\n  minimal failure: {minimal_failure}\n  \
         scenario: {}",
        build_scenario(&minimal).name
    );
}

/// The full sweep for one family: sizes × planted modes × seeds, each cell
/// swept over the engine-config grid by [`engine_divergence`].
///
/// `large` is the family's big size: IP ranges carry two interval variables
/// per atom, so their forward reduction grows quadratically in the canonical
/// partitions and a smaller "large" keeps the sweep fast.
fn sweep_family(family: ScenarioFamily, large: usize) {
    for tuples in [scaled_tuples(12), scaled_tuples(large)] {
        for planted in [
            PlantedAnswer::Natural,
            PlantedAnswer::Satisfiable,
            PlantedAnswer::Unsatisfiable,
            PlantedAnswer::NearMiss,
        ] {
            for seed in scaled_seeds(0..3) {
                let cfg = ScenarioConfig::new(family)
                    .with_tuples(tuples)
                    .with_seed(seed)
                    .with_planted(planted);
                check_config(&cfg);
            }
        }
    }
}

#[test]
fn temporal_overlap_agrees_across_all_paths() {
    sweep_family(ScenarioFamily::TemporalOverlap, 30);
}

#[test]
fn ip_ranges_agree_across_all_paths() {
    sweep_family(ScenarioFamily::IpRanges, 18);
}

#[test]
fn genomic_overlap_agrees_across_all_paths() {
    sweep_family(ScenarioFamily::GenomicOverlap, 30);
}

#[test]
fn spatial_rectangles_agree_across_all_paths() {
    sweep_family(ScenarioFamily::SpatialRectangles, 30);
}

#[test]
fn extreme_knob_settings_agree() {
    // Degenerate corners the random sweep under-samples: minimal sizes,
    // maximal skew, extreme selectivities.
    for family in ScenarioFamily::ALL {
        for (tuples, selectivity, skew) in [
            (1, 0.5, 1.0),
            (2, 1.0, 4.0),
            (3, 0.001, 0.0),
            (scaled_tuples(20), 1.0, 4.0),
        ] {
            let cfg = ScenarioConfig::new(family)
                .with_tuples(tuples)
                .with_seed(99)
                .with_selectivity(selectivity)
                .with_skew(skew);
            check_config(&cfg);
        }
    }
}

#[test]
fn minimiser_finds_the_smallest_diverging_config() {
    // Synthetic predicate: "diverges" iff tuples >= 7.  The minimiser must
    // land exactly on 7 tuples with neutral knobs, proving it neither
    // overshoots (stops early) nor undershoots (accepts a passing config).
    let start = ScenarioConfig::new(ScenarioFamily::TemporalOverlap)
        .with_tuples(64)
        .with_selectivity(0.3)
        .with_skew(2.0);
    let minimal = minimise(start, &|c| c.tuples_per_relation >= 7);
    assert_eq!(minimal.tuples_per_relation, 7);
    assert_eq!(minimal.skew, 0.0);
    assert_eq!(minimal.selectivity, 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 12 } else { 48 }
    ))]

    /// Random generator parameters (the vendored proptest draws them; the
    /// harness shrinks on failure via `check_config`'s minimiser).
    #[test]
    fn random_scenario_parameters_agree(
        family_idx in 0usize..4,
        tuples in 1usize..=10,
        seed in 0u64..10_000,
        selectivity_pct in 1u32..=100,
        skew_tenths in 0u32..=40,
        planted_idx in 0usize..4,
    ) {
        let planted = [
            PlantedAnswer::Natural,
            PlantedAnswer::Satisfiable,
            PlantedAnswer::Unsatisfiable,
            PlantedAnswer::NearMiss,
        ][planted_idx];
        let cfg = ScenarioConfig::new(ScenarioFamily::ALL[family_idx])
            .with_tuples(tuples)
            .with_seed(seed)
            .with_selectivity(f64::from(selectivity_pct) / 100.0)
            .with_skew(f64::from(skew_tenths) / 10.0)
            .with_planted(planted);
        check_config(&cfg);
    }
}
