//! Property tests for the interned columnar core: the value dictionary
//! (intern/resolve round-trips, dedup, ordering stability) and the
//! equivalence of the `u32`-keyed hash tries with a reference `Value`-keyed
//! trie on random workloads.

use ij_ejoin::{generic_join_boolean, AtomTrie, BoundAtom, TrieNode};
use ij_hypergraph::VarId;
use ij_relation::{Dictionary, Relation, Value, ValueId};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A strategy for mixed point/interval values over a small domain (ties are
/// likely, which is what interning must handle).
fn arb_value() -> impl Strategy<Value = Value> {
    (0u32..3, 0i32..12, 0i32..4).prop_map(|(kind, a, len)| match kind {
        0 => Value::point(a as f64),
        _ => Value::interval(a as f64, (a + len) as f64),
    })
}

/// A strategy for small binary relations of integer points.
fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(i32, i32)>> {
    proptest::collection::vec((0i32..6, 0i32..6), 1..=max)
}

/// The reference trie of the pre-interning engine: nodes keyed by full
/// [`Value`]s, built from materialised rows.
#[derive(Debug, Default)]
struct ValueTrie {
    children: BTreeMap<Value, ValueTrie>,
}

impl ValueTrie {
    fn insert_path(&mut self, values: &[Value]) {
        if let Some((first, rest)) = values.split_first() {
            self.children.entry(*first).or_default().insert_path(rest);
        }
    }

    /// Builds the trie exactly like [`AtomTrie::build`], but over rows of
    /// values: distinct variables in global order, repeated columns filtered
    /// by value equality.
    fn build(relation: &Relation, vars: &[VarId], global_order: &[VarId]) -> Self {
        let mut level_vars: Vec<VarId> = vars.to_vec();
        level_vars.sort_unstable();
        level_vars.dedup();
        level_vars.sort_by_key(|v| global_order.iter().position(|u| u == v).unwrap());
        let first_col: Vec<usize> = level_vars
            .iter()
            .map(|&v| vars.iter().position(|&u| u == v).unwrap())
            .collect();
        let mut equal_pairs: Vec<(usize, usize)> = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            let first = vars.iter().position(|&u| u == v).unwrap();
            if first != i {
                equal_pairs.push((first, i));
            }
        }
        let mut root = ValueTrie::default();
        'rows: for t in relation.tuples() {
            for &(a, b) in &equal_pairs {
                if t[a] != t[b] {
                    continue 'rows;
                }
            }
            let path: Vec<Value> = first_col.iter().map(|&c| t[c]).collect();
            root.insert_path(&path);
        }
        root
    }
}

/// Asserts that an id-keyed trie node and a value-keyed trie node describe
/// the same set of paths.
fn assert_same_trie(id_node: &TrieNode, value_node: &ValueTrie) {
    assert_eq!(id_node.fanout(), value_node.children.len());
    for (id, id_child) in id_node.children() {
        let value = id.resolve();
        let value_child = value_node
            .children
            .get(&value)
            .unwrap_or_else(|| panic!("value {value:?} missing from reference trie"));
        assert_same_trie(id_child, value_child);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Interning and resolving through the shared dictionary round-trips and
    /// deduplicates: equal values get equal ids, distinct values distinct ids.
    #[test]
    fn intern_resolve_round_trip_and_dedup(values in proptest::collection::vec(arb_value(), 1..40)) {
        let ids: Vec<ValueId> = values.iter().map(|&v| ValueId::intern(v)).collect();
        for (&v, &id) in values.iter().zip(&ids) {
            prop_assert_eq!(id.resolve(), v);
        }
        for (i, &a) in values.iter().enumerate() {
            for (j, &b) in values.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j], "values {:?} / {:?}", a, b);
            }
        }
    }

    /// Ordering stability: once assigned, an id never changes — re-interning
    /// after arbitrary further interns yields the original ids, and the
    /// dictionary lookup agrees.
    #[test]
    fn interned_ids_are_stable(
        first in proptest::collection::vec(arb_value(), 1..20),
        later in proptest::collection::vec(arb_value(), 0..20),
    ) {
        let before: Vec<ValueId> = first.iter().map(|&v| ValueId::intern(v)).collect();
        for &v in &later {
            ValueId::intern(v);
        }
        let after: Vec<ValueId> = first.iter().map(|&v| ValueId::intern(v)).collect();
        prop_assert_eq!(&before, &after);
        let dict = Dictionary::reader();
        for (&v, &id) in first.iter().zip(&before) {
            prop_assert_eq!(dict.lookup(&v), Some(id));
        }
    }

    /// The u32-keyed trie of the join engine is structurally identical to the
    /// reference Value-keyed trie on random relations, including repeated
    /// variables (filters) and both level orders.
    #[test]
    fn id_trie_matches_value_trie(rows in arb_rows(20), repeated in 0u32..3) {
        let vars: Vec<VarId> = match repeated {
            0 => vec![0, 1],
            1 => vec![1, 0],
            _ => vec![0, 0],
        };
        let relation = Relation::from_tuples(
            "R",
            2,
            rows.iter().map(|&(a, b)| vec![Value::point(a as f64), Value::point(b as f64)]).collect(),
        );
        for order in [vec![0, 1], vec![1, 0]] {
            let atom = BoundAtom::new(&relation, vars.clone());
            let id_trie = AtomTrie::build(&atom, &order);
            let value_trie = ValueTrie::build(&relation, &vars, &order);
            assert_same_trie(id_trie.root(), &value_trie);
        }
    }

    /// End-to-end: the id-keyed generic join answers the triangle query the
    /// same as a brute-force check over materialised rows.
    #[test]
    fn id_joins_match_row_oriented_answers(
        r in arb_rows(8),
        s in arb_rows(8),
        t in arb_rows(8),
    ) {
        let rel = |name: &str, rows: &[(i32, i32)]| {
            Relation::from_tuples(
                name,
                2,
                rows.iter().map(|&(a, b)| vec![Value::point(a as f64), Value::point(b as f64)]).collect(),
            )
        };
        let (r, s, t) = (rel("R", &r), rel("S", &s), rel("T", &t));
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t, vec![0, 2]),
        ];
        let expected = r.tuples().iter().any(|ra| {
            s.tuples().iter().any(|sa| {
                t.tuples().iter().any(|ta| ra[1] == sa[0] && ra[0] == ta[0] && sa[1] == ta[1])
            })
        });
        prop_assert_eq!(generic_join_boolean(&atoms, None), expected);
    }
}
