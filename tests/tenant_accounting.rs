//! Acceptance and property tests for the per-tenant accounting layer (PR 5):
//!
//! * per-evaluation `EvaluationStats::trie_cache` must be **exact** when
//!   evaluations run concurrently against one shared workspace cache — a
//!   warm evaluation never reports a concurrent neighbor's misses, and the
//!   per-evaluation lookups sum to the cache's cumulative counters;
//! * a tenant's resident cache bytes must never exceed its byte quota while
//!   the pooled byte budget stays a hard ceiling and answers stay
//!   bit-identical to the unquota'd run;
//! * a quota'd noisy neighbor must shed its *own* warmth, leaving a victim
//!   tenant's entries resident (the fairness property the
//!   `substrate/e1-tenant-fairness` bench measures).
//!
//! Run in `--release` too (see the CI test job): the optimized lock paths
//! are where attribution races would actually surface.

use ij_engine::{EngineConfig, IntersectionJoinEngine, Workspace, WorkspaceLimits};
use ij_relation::{Database, Query, Value};
use ij_workloads::{
    generate_for_query, planted_unsatisfiable, IntervalDistribution, WorkloadConfig,
};
use proptest::prelude::*;

fn triangle() -> Query {
    Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap()
}

fn workload(seed: u64, tuples: usize) -> Database {
    generate_for_query(
        &triangle(),
        &WorkloadConfig {
            tuples_per_relation: tuples,
            seed,
            distribution: IntervalDistribution::Uniform {
                span: 120.0,
                max_len: 25.0,
            },
        },
    )
}

/// A planted-unsatisfiable workload: the false answer forces a full pass
/// over every disjunct, so each database leaves its full trie footprint in
/// the cache (early exit would otherwise let small satisfiable databases
/// under-fill it).
fn planted(seed: u64, tuples: usize) -> Database {
    planted_unsatisfiable(
        &triangle(),
        &WorkloadConfig {
            tuples_per_relation: tuples,
            seed,
            distribution: IntervalDistribution::GridAligned {
                span: 4.0 * tuples as f64,
                cells: (2 * tuples) as u32,
                max_cells: 3,
            },
        },
    )
}

/// Concurrent evaluations sharing one workspace cache report exact
/// per-evaluation statistics: the warm thread re-evaluates a cached
/// reduction while the noisy thread streams *distinct* databases (misses)
/// through the same cache — and every warm evaluation still reports zero
/// misses, because its counters are accumulated locally rather than
/// snapshotted off the shared cache.
#[test]
fn concurrent_evaluations_report_exact_per_evaluation_stats() {
    let query = triangle();
    let ws = Workspace::new();
    let warm_db = ws.import_database(&workload(1, 10));
    let primer = ws.engine(EngineConfig::new().with_parallelism(1));
    let primed = primer.evaluate_with_stats(&query, &warm_db).unwrap();
    assert!(primed.trie_cache.misses > 0, "priming pass must build");
    let baseline = ws.trie_cache_stats();

    const ROUNDS: usize = 8;
    let (warm_stats, noisy_stats) = std::thread::scope(|scope| {
        let warm = scope.spawn(|| {
            let engine = ws.engine(EngineConfig::new().with_parallelism(1));
            (0..ROUNDS)
                .map(|_| engine.evaluate_with_stats(&query, &warm_db).unwrap())
                .collect::<Vec<_>>()
        });
        let noisy = scope.spawn(|| {
            (0..ROUNDS)
                .map(|i| {
                    let db = ws.import_database(&workload(100 + i as u64, 10));
                    ws.engine(EngineConfig::new().with_parallelism(1))
                        .evaluate_with_stats(&query, &db)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        });
        (warm.join().unwrap(), noisy.join().unwrap())
    });

    // Exactness: a warm evaluation never reports a neighbor's misses, no
    // matter how the two threads interleave.
    for (i, stats) in warm_stats.iter().enumerate() {
        assert_eq!(
            stats.trie_cache.misses, 0,
            "warm evaluation {i} stole a neighbor's misses: {:?}",
            stats.trie_cache
        );
        assert!(stats.trie_cache.hits > 0, "warm evaluation {i} must hit");
    }
    // The noisy evaluations really did miss concurrently (the scenario the
    // old snapshot-delta reporting misattributed).
    let noisy_misses: usize = noisy_stats.iter().map(|s| s.trie_cache.misses).sum();
    assert!(noisy_misses > 0, "noisy thread must have built tries");

    // Conservation: the per-evaluation counters sum exactly to the cache's
    // cumulative counters — nothing double-counted, nothing dropped.
    let local_lookups: usize = warm_stats
        .iter()
        .chain(&noisy_stats)
        .map(|s| s.trie_cache.hits + s.trie_cache.misses)
        .sum();
    let total = ws.trie_cache_stats();
    assert_eq!(
        (total.hits + total.misses) - (baseline.hits + baseline.misses),
        local_lookups,
        "per-evaluation lookups must sum to the cache's cumulative counters"
    );
}

/// The noisy-neighbor fairness property: under a pooled byte budget alone, a
/// flooding tenant evicts the victim's warmth (shared LRU); giving the noisy
/// tenant a byte quota makes it shed its *own* entries instead, and the
/// victim's repeat evaluation stays all-hits.
#[test]
fn quota_keeps_a_victim_warm_under_a_noisy_neighbor() {
    let query = triangle();
    // Measure the per-database trie footprint on an unbounded workspace.
    let probe = Workspace::new();
    let probe_db = probe.import_database(&planted(0, 10));
    let _ = probe
        .engine(EngineConfig::new().with_parallelism(1))
        .evaluate(&query, &probe_db)
        .unwrap();
    let per_db = probe.trie_cache_stats().resident_bytes;
    assert!(per_db > 0);
    // Room for the victim plus ~1.5 noisy databases — the flood below is
    // ~4 databases, so the pooled LRU must evict.
    let budget = 2 * per_db + per_db / 2;

    let run = |noisy_quota: usize| {
        let ws = Workspace::with_limits(WorkspaceLimits::new().with_trie_cache_bytes(budget));
        let victim = ws.tenant("victim");
        let noisy = ws.tenant("noisy").with_trie_cache_quota(noisy_quota);
        let victim_db = ws.import_database(&planted(0, 10));
        let victim_engine = victim.engine(EngineConfig::new().with_parallelism(1));
        let first = victim_engine
            .evaluate_with_stats(&query, &victim_db)
            .unwrap();
        assert!(first.trie_cache.misses > 0);
        // The noisy neighbor floods distinct full-pass databases through
        // the pool.
        for seed in 1..=4 {
            let db = ws.import_database(&planted(seed, 10));
            let _ = noisy
                .engine(EngineConfig::new().with_parallelism(1))
                .evaluate(&query, &db)
                .unwrap();
        }
        let pool = ws.trie_cache_stats();
        assert!(pool.resident_bytes <= budget, "pooled ceiling holds");
        let again = victim_engine
            .evaluate_with_stats(&query, &victim_db)
            .unwrap();
        assert_eq!(again.answer, first.answer);
        (again, victim.cache_stats(), noisy.cache_stats())
    };

    // Without a quota the flood evicts the victim (shared LRU): its repeat
    // evaluation rebuilds.
    let (evicted, victim_ledger, _) = run(0);
    assert!(
        evicted.trie_cache.misses > 0,
        "un-quota'd noisy neighbor must evict the victim, got {:?}",
        evicted.trie_cache
    );
    assert!(victim_ledger.evictions > 0);

    // With the noisy tenant quota'd to ~one database's footprint, it sheds
    // its own LRU entries and the victim's warmth survives the same flood
    // (victim + quota'd noisy fit the pooled budget with headroom).
    let (retained, victim_ledger, noisy_ledger) = run(per_db);
    assert_eq!(
        retained.trie_cache.misses, 0,
        "quota'd noisy neighbor must not evict the victim, got {:?}",
        retained.trie_cache
    );
    assert!(retained.trie_cache.hits > 0);
    assert_eq!(victim_ledger.evictions, 0);
    assert!(
        noisy_ledger.evictions > 0,
        "the noisy tenant evicted itself"
    );
    assert!(noisy_ledger.resident_bytes <= noisy_ledger.quota_bytes);
}

/// Cancellation never breaks the accounting (PR 8): evaluations interrupted
/// mid-flight — during trie builds included — leave the per-tenant ledgers
/// summing exactly to the pool's resident state, and a subsequent warm
/// evaluation still reports zero misses.
#[test]
fn cancelled_evaluations_leave_ledgers_exact() {
    use ij_engine::{CancellationToken, EvalError};

    let query = triangle();
    for delay_us in [0u64, 50, 200, 800, 3_000] {
        let ws = Workspace::new();
        let dbs: Vec<_> = (0..2)
            .map(|i| ws.import_database(&planted(i, 12)))
            .collect();
        let token = CancellationToken::new().with_check_interval(32);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = ["noisy", "warm"]
                .into_iter()
                .zip(&dbs)
                .map(|(name, db)| {
                    let (ws, query, token) = (&ws, &query, &token);
                    scope.spawn(move || {
                        ws.tenant(name)
                            .engine(EngineConfig::new().with_parallelism(2))
                            .evaluate_cancellable(query, db, Some(token))
                    })
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            token.cancel();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluations never panic"))
                .collect::<Vec<_>>()
        });
        for result in results {
            match result {
                Ok(answer) => assert!(!answer, "planted-unsatisfiable workload"),
                Err(ij_engine::EngineError::Evaluation(EvalError::Cancelled)) => {}
                Err(other) => panic!("unexpected error at delay {delay_us}µs: {other:?}"),
            }
        }

        // Conservation: abandoned builds leak no accounting — the tenant
        // ledgers partition the pool's resident state exactly.
        let pool = ws.trie_cache_stats();
        let noisy = ws.tenant("noisy").cache_stats();
        let warm = ws.tenant("warm").cache_stats();
        assert_eq!(noisy.entries + warm.entries, pool.entries);
        assert_eq!(
            noisy.resident_bytes + warm.resident_bytes,
            pool.resident_bytes,
            "ledger bytes diverged from the pool at delay {delay_us}µs"
        );

        // Warm exactness survives the interruption: prime once, then the
        // repeat reports zero misses of its own.
        let engine = ws
            .tenant("warm")
            .engine(EngineConfig::new().with_parallelism(1));
        let primed = engine.evaluate_with_stats(&query, &dbs[1]).unwrap();
        assert!(!primed.answer);
        let again = engine.evaluate_with_stats(&query, &dbs[1]).unwrap();
        assert_eq!(
            again.trie_cache.misses, 0,
            "warm re-run rebuilt after cancellation at delay {delay_us}µs: {:?}",
            again.trie_cache
        );
    }
}

/// A random interval over a small integer domain (ties and overlaps likely).
fn arb_interval() -> impl Strategy<Value = Value> {
    (0i32..14, 0i32..5).prop_map(|(lo, len)| Value::interval(lo as f64, (lo + len) as f64))
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Value, Value)>> {
    proptest::collection::vec((arb_interval(), arb_interval()), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-tenant quotas bound the tenant's resident bytes at every step,
    /// the pooled byte budget is never exceeded, and the answers are
    /// bit-identical to the unquota'd run over the same database sequence.
    #[test]
    fn tenant_quota_bounds_resident_bytes_with_identical_answers(
        dbs in proptest::collection::vec(
            (arb_rows(5), arb_rows(5), arb_rows(5)), 2..=4),
        quota_denominator in 1usize..6,
    ) {
        let query = triangle();
        type Rows = Vec<(Value, Value)>;
        let build = |ws: &Workspace, rows: &(Rows, Rows, Rows)| {
            let mut db = ws.database();
            for (name, rel_rows) in [("R", &rows.0), ("S", &rows.1), ("T", &rows.2)] {
                db.insert_tuples(name, 2, rel_rows.iter().map(|&(a, b)| vec![a, b]).collect());
            }
            db
        };

        // Reference: unquota'd workspace over the same sequence.
        let free = Workspace::new();
        let mut expected = Vec::new();
        for rows in &dbs {
            let db = build(&free, rows);
            expected.push(
                free.tenant("ref")
                    .engine(EngineConfig::new().with_parallelism(1))
                    .evaluate(&query, &db)
                    .unwrap(),
            );
        }
        let footprint = free.trie_cache_stats().resident_bytes;
        prop_assert!(footprint > 0, "non-empty databases must leave tries resident");
        // Quotas from generous (≈ the whole footprint) down to starving.
        let quota = (footprint / quota_denominator).max(1);
        let pooled = footprint; // hard ceiling, independently asserted

        let ws = Workspace::with_limits(WorkspaceLimits::new().with_trie_cache_bytes(pooled));
        let tenant = ws.tenant("quota").with_trie_cache_quota(quota);
        for (i, rows) in dbs.iter().enumerate() {
            let db = build(&ws, rows);
            let answer = tenant
                .engine(EngineConfig::new().with_parallelism(1))
                .evaluate(&query, &db)
                .unwrap();
            prop_assert_eq!(answer, expected[i], "database {} diverged under quota", i);
            let ledger = tenant.cache_stats();
            prop_assert!(
                ledger.resident_bytes <= quota,
                "tenant resident {} exceeds quota {} after database {}",
                ledger.resident_bytes, quota, i
            );
            let pool = ws.trie_cache_stats();
            prop_assert!(
                pool.resident_bytes <= pooled,
                "pooled resident {} exceeds budget {}",
                pool.resident_bytes, pooled
            );
        }
        // The quota'd tenant owns every entry of this workspace, so the
        // ledger and the pool agree on the resident state.
        let ledger = tenant.cache_stats();
        let pool = ws.trie_cache_stats();
        prop_assert_eq!(ledger.entries, pool.entries);
        prop_assert_eq!(ledger.resident_bytes, pool.resident_bytes);

        // Differential cross-check against the naive oracle on the last
        // database: quotas never changed an answer anywhere above, and the
        // engine path agrees with exhaustive backtracking here.
        let last = build(&ws, dbs.last().unwrap());
        prop_assert_eq!(
            *expected.last().unwrap(),
            IntersectionJoinEngine::with_defaults().evaluate_naive(&query, &last).unwrap()
        );
    }
}
