//! Property tests for the SIMD-friendly scan kernels (`ij_relation::kernels`):
//! on random `ValueId` slices of every length — including lengths that are
//! not a multiple of the chunk width — the chunked kernels must be
//! indistinguishable from their scalar reference implementations.

use ij_relation::kernels::{
    and_equal_mask, and_equal_mask_scalar, gather_ids, gather_ids_scalar, pack_keys,
    pack_keys_scalar, select_indices, select_indices_scalar, LANES,
};
use ij_relation::ValueId;
use proptest::prelude::*;

/// Random id slices over a small raw domain (equal pairs likely), with
/// lengths straddling multiples of the lane width.
fn arb_ids(max_len: usize) -> impl Strategy<Value = Vec<ValueId>> {
    proptest::collection::vec((0u32..7).prop_map(ValueId::from_raw), 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Chunked equal-pair masking ≡ scalar reference, including accumulation
    /// over an arbitrary starting mask.
    #[test]
    fn and_equal_mask_matches_scalar(
        pairs in arb_ids(4 * LANES + 5).prop_flat_map(|a| {
            let n = a.len();
            (
                Just(a),
                proptest::collection::vec((0u32..7).prop_map(ValueId::from_raw), n..=n),
                proptest::collection::vec(0u8..2, n..=n),
            )
        })
    ) {
        let (a, b, mask0) = pairs;
        let mut chunked = mask0.clone();
        let mut scalar = mask0;
        and_equal_mask(&a, &b, &mut chunked);
        and_equal_mask_scalar(&a, &b, &mut scalar);
        prop_assert_eq!(chunked, scalar);
    }

    /// Chunked selection-by-mask ≡ scalar reference at every base offset,
    /// and appends to (never clobbers) the output.
    #[test]
    fn select_indices_matches_scalar(
        mask in proptest::collection::vec(0u8..2, 0..4 * LANES + 7),
        base in 0u32..1000,
    ) {
        let mut chunked = vec![u32::MAX];
        let mut scalar = vec![u32::MAX];
        select_indices(&mask, base, &mut chunked);
        select_indices_scalar(&mask, base, &mut scalar);
        prop_assert_eq!(&chunked, &scalar);
        prop_assert_eq!(chunked[0], u32::MAX, "existing output must be kept");
        let expected: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m != 0)
            .map(|(i, _)| base + i as u32)
            .collect();
        prop_assert_eq!(&chunked[1..], expected.as_slice());
    }

    /// Chunked gathering ≡ scalar reference on random in-bounds row lists
    /// (repeats and arbitrary order included).
    #[test]
    fn gather_ids_matches_scalar(
        col in proptest::collection::vec((0u32..7).prop_map(ValueId::from_raw), 1..3 * LANES + 3),
        picks in proptest::collection::vec(0usize..64, 0..3 * LANES + 2),
    ) {
        let rows: Vec<u32> = picks.iter().map(|&p| (p % col.len()) as u32).collect();
        let mut chunked = Vec::new();
        let mut scalar = Vec::new();
        gather_ids(&col, &rows, &mut chunked);
        gather_ids_scalar(&col, &rows, &mut scalar);
        prop_assert_eq!(chunked, scalar);
    }

    /// Chunked key packing ≡ scalar reference for one to four columns.
    #[test]
    fn pack_keys_matches_scalar(cols in (1usize..5, 0usize..3 * LANES + 5).prop_flat_map(|(k, n)| {
        proptest::collection::vec(
            proptest::collection::vec((0u32..9).prop_map(ValueId::from_raw), n..=n),
            k..=k,
        )
    })) {
        let views: Vec<&[ValueId]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut chunked = Vec::new();
        let mut scalar = Vec::new();
        pack_keys(&views, &mut chunked);
        pack_keys_scalar(&views, &mut scalar);
        prop_assert_eq!(&chunked, &scalar);
        // Shape: row-major, one key of width k per row.
        let k = views.len();
        let n = views[0].len();
        prop_assert_eq!(chunked.len(), n * k);
        for (row, key) in chunked.chunks_exact(k).enumerate() {
            for (j, &id) in key.iter().enumerate() {
                prop_assert_eq!(id, views[j][row]);
            }
        }
    }
}

/// Deterministic spot-check: a composed filter-select-gather pipeline (the
/// trie build's shape) agrees between the chunked and scalar kernels on a
/// length that exercises every tail path.
#[test]
fn composed_pipeline_agrees() {
    let n = 2 * LANES + 3;
    let a: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw((i % 4) as u32)).collect();
    let b: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw((i % 3) as u32)).collect();
    let mut mask_c = vec![1u8; n];
    let mut mask_s = vec![1u8; n];
    and_equal_mask(&a, &b, &mut mask_c);
    and_equal_mask_scalar(&a, &b, &mut mask_s);
    assert_eq!(mask_c, mask_s);
    let (mut rows_c, mut rows_s) = (Vec::new(), Vec::new());
    select_indices(&mask_c, 0, &mut rows_c);
    select_indices_scalar(&mask_s, 0, &mut rows_s);
    assert_eq!(rows_c, rows_s);
    let (mut out_c, mut out_s) = (Vec::new(), Vec::new());
    gather_ids(&a, &rows_c, &mut out_c);
    gather_ids_scalar(&a, &rows_s, &mut out_s);
    assert_eq!(out_c, out_s);
    // The survivors are exactly the positions where a == b, i.e. where
    // i mod 4 == i mod 3 (i mod 12 ∈ {0, 1, 2}).
    assert_eq!(rows_c, vec![0, 1, 2, 12, 13, 14]);
}
