//! Property tests for the SIMD scan kernels (`ij_relation::kernels`): on
//! random `ValueId` slices of every length — including lengths that are not
//! a multiple of the lane width — the *dispatched* kernels (AVX2 or portable,
//! whatever this process resolved to) must be indistinguishable from their
//! scalar reference implementations, and on `x86_64` hosts with AVX2 the
//! AVX2 arm is additionally exercised *directly*, so both arms are covered
//! regardless of how the dispatch resolved (CI runs this suite once
//! normally and once under `IJ_FORCE_SCALAR_KERNELS=1`).

use ij_relation::kernels::{
    and_equal_mask, and_equal_mask_scalar, gallop_seek, gallop_seek_scalar, gallop_seek_with_span,
    gather_ids, gather_ids_scalar, intersect_sorted_gallop, intersect_sorted_scalar, kernel_arm,
    leapfrog_next, leapfrog_next_scalar, pack_keys, pack_keys_scalar, select_indices,
    select_indices_scalar, KernelArm, FORCE_SCALAR_ENV, LANES,
};
use ij_relation::ValueId;
use proptest::prelude::*;

/// Random id slices over a small raw domain (equal pairs likely), with
/// lengths straddling multiples of the lane width.
fn arb_ids(max_len: usize) -> impl Strategy<Value = Vec<ValueId>> {
    proptest::collection::vec((0u32..7).prop_map(ValueId::from_raw), 0..=max_len)
}

/// Raw id values spanning the full `u32` range, concentrated around the
/// signed/unsigned boundary the AVX2 biased compares must get right.
fn arb_raw_wide() -> impl Strategy<Value = u32> {
    (0u32..=u32::MAX, 0u8..4).prop_map(|(x, sel)| match sel {
        0 => x % 70,                                // dense low ids
        1 => 0x7FFF_FFF0u32.wrapping_add(x % 0x20), // signed/unsigned boundary
        2 => u32::MAX - (x % 70),                   // top of the domain
        _ => x,                                     // anywhere
    })
}

/// A sorted run of distinct ids (what every trie level stores), length 0 to
/// a few lanes' worth, values from the wide domain.
fn arb_run(max_len: usize) -> impl Strategy<Value = Vec<ValueId>> {
    proptest::collection::vec(arb_raw_wide(), 0..=max_len).prop_map(|mut raw| {
        raw.sort_unstable();
        raw.dedup();
        raw.into_iter().map(ValueId::from_raw).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Chunked equal-pair masking ≡ scalar reference, including accumulation
    /// over an arbitrary starting mask.
    #[test]
    fn and_equal_mask_matches_scalar(
        pairs in arb_ids(4 * LANES + 5).prop_flat_map(|a| {
            let n = a.len();
            (
                Just(a),
                proptest::collection::vec((0u32..7).prop_map(ValueId::from_raw), n..=n),
                proptest::collection::vec(0u8..2, n..=n),
            )
        })
    ) {
        let (a, b, mask0) = pairs;
        let mut chunked = mask0.clone();
        let mut scalar = mask0;
        and_equal_mask(&a, &b, &mut chunked);
        and_equal_mask_scalar(&a, &b, &mut scalar);
        prop_assert_eq!(chunked, scalar);
    }

    /// Chunked selection-by-mask ≡ scalar reference at every base offset,
    /// and appends to (never clobbers) the output.
    #[test]
    fn select_indices_matches_scalar(
        mask in proptest::collection::vec(0u8..2, 0..4 * LANES + 7),
        base in 0u32..1000,
    ) {
        let mut chunked = vec![u32::MAX];
        let mut scalar = vec![u32::MAX];
        select_indices(&mask, base, &mut chunked);
        select_indices_scalar(&mask, base, &mut scalar);
        prop_assert_eq!(&chunked, &scalar);
        prop_assert_eq!(chunked[0], u32::MAX, "existing output must be kept");
        let expected: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m != 0)
            .map(|(i, _)| base + i as u32)
            .collect();
        prop_assert_eq!(&chunked[1..], expected.as_slice());
    }

    /// Chunked gathering ≡ scalar reference on random in-bounds row lists
    /// (repeats and arbitrary order included).
    #[test]
    fn gather_ids_matches_scalar(
        col in proptest::collection::vec((0u32..7).prop_map(ValueId::from_raw), 1..3 * LANES + 3),
        picks in proptest::collection::vec(0usize..64, 0..3 * LANES + 2),
    ) {
        let rows: Vec<u32> = picks.iter().map(|&p| (p % col.len()) as u32).collect();
        let mut chunked = Vec::new();
        let mut scalar = Vec::new();
        gather_ids(&col, &rows, &mut chunked);
        gather_ids_scalar(&col, &rows, &mut scalar);
        prop_assert_eq!(chunked, scalar);
    }

    /// Chunked key packing ≡ scalar reference for one to four columns.
    #[test]
    fn pack_keys_matches_scalar(cols in (1usize..5, 0usize..3 * LANES + 5).prop_flat_map(|(k, n)| {
        proptest::collection::vec(
            proptest::collection::vec((0u32..9).prop_map(ValueId::from_raw), n..=n),
            k..=k,
        )
    })) {
        let views: Vec<&[ValueId]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut chunked = Vec::new();
        let mut scalar = Vec::new();
        pack_keys(&views, &mut chunked);
        pack_keys_scalar(&views, &mut scalar);
        prop_assert_eq!(&chunked, &scalar);
        // Shape: row-major, one key of width k per row.
        let k = views.len();
        let n = views[0].len();
        prop_assert_eq!(chunked.len(), n * k);
        for (row, key) in chunked.chunks_exact(k).enumerate() {
            for (j, &id) in key.iter().enumerate() {
                prop_assert_eq!(id, views[j][row]);
            }
        }
    }

    /// Dispatched galloping seek ≡ scalar linear scan at every start, over
    /// the whole raw domain (the biased-compare boundary cases included).
    #[test]
    fn gallop_seek_matches_scalar(
        run in arb_run(4 * LANES + 5),
        start_frac in 0usize..=100,
        target_raw in arb_raw_wide(),
    ) {
        let start = start_frac * run.len() / 100;
        let target = ValueId::from_raw(target_raw);
        prop_assert_eq!(
            gallop_seek(&run, start, target),
            gallop_seek_scalar(&run, start, target)
        );
    }

    /// The linear-probe span never changes the answer: every span from pure
    /// gallop (0) past the default agrees with the scalar reference.
    #[test]
    fn gallop_span_is_answer_preserving(
        run in arb_run(4 * LANES + 5),
        start_frac in 0usize..=100,
        target_raw in arb_raw_wide(),
        span in 0usize..=3 * LANES,
    ) {
        let start = start_frac * run.len() / 100;
        let target = ValueId::from_raw(target_raw);
        prop_assert_eq!(
            gallop_seek_with_span(&run, start, target, span),
            gallop_seek_scalar(&run, start, target)
        );
    }

    /// Dispatched mutual-galloping intersection ≡ scalar two-pointer merge,
    /// both argument orders.
    #[test]
    fn intersect_sorted_matches_scalar(
        a in arb_run(4 * LANES + 5),
        b in arb_run(4 * LANES + 5),
    ) {
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        for (x, y) in [(&a, &b), (&b, &a)] {
            intersect_sorted_gallop(x, y, &mut fast);
            intersect_sorted_scalar(x, y, &mut slow);
            prop_assert_eq!(&fast, &slow);
        }
    }

    /// Multi-way leapfrog enumeration (through the dispatched seek) ≡ the
    /// scalar reference, for one to four runs.
    #[test]
    fn leapfrog_matches_scalar(
        runs in proptest::collection::vec(arb_run(3 * LANES + 3), 1..=4),
    ) {
        let views: Vec<&[ValueId]> = runs.iter().map(|r| r.as_slice()).collect();
        let collect = |next: fn(&[&[ValueId]], &mut [usize]) -> Option<ValueId>| {
            let mut cursors = vec![0usize; views.len()];
            let mut out = Vec::new();
            while let Some(v) = next(&views, &mut cursors) {
                out.push(v);
                for c in cursors.iter_mut() {
                    *c += 1;
                }
            }
            out
        };
        prop_assert_eq!(collect(leapfrog_next), collect(leapfrog_next_scalar));
    }
}

/// The dispatch honours the forced-scalar override: under
/// `IJ_FORCE_SCALAR_KERNELS` (≠ "0") the process must report the scalar arm.
/// (The variable is read once per process, so this asserts on whatever the
/// test process was started with — CI runs the suite both ways.)
#[test]
fn dispatch_honours_forced_scalar_override() {
    let forced = std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| v != "0");
    if forced {
        assert_eq!(kernel_arm(), KernelArm::Scalar);
    }
    // Either way the arm must be resolvable and self-consistent.
    assert_eq!(kernel_arm(), kernel_arm());
}

/// On AVX2 hosts, exercise the AVX2 arm *directly* against the scalar
/// references on adversarial lengths (0, 1, lane−1, lane, lane+1, and
/// non-multiple-of-lane tails around the 32-element block size) — covered
/// even when the dispatch table is pinned to scalar.
#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_arm_matches_scalar_on_adversarial_lengths() {
    use ij_relation::kernels::avx2;
    if !avx2::available() {
        eprintln!("host has no AVX2; direct-arm coverage skipped");
        return;
    }
    let lengths = [
        0,
        1,
        LANES - 1,
        LANES,
        LANES + 1,
        2 * LANES - 1,
        31,
        32,
        33,
        4 * LANES + 5,
    ];
    for &n in &lengths {
        let a: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw(i as u32 % 5)).collect();
        let b: Vec<ValueId> = (0..n)
            .map(|i| ValueId::from_raw((i + 1) as u32 % 5))
            .collect();
        let mask0: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect(); // incl. mask byte 2
        let (mut fast, mut slow) = (mask0.clone(), mask0);
        avx2::and_equal_mask(&a, &b, &mut fast);
        and_equal_mask_scalar(&a, &b, &mut slow);
        assert_eq!(fast, slow, "and_equal_mask len {n}");

        let sel_mask: Vec<u8> = (0..n).map(|i| u8::from(i % 4 == 1)).collect();
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        avx2::select_indices(&sel_mask, 7, &mut fast);
        select_indices_scalar(&sel_mask, 7, &mut slow);
        assert_eq!(fast, slow, "select_indices len {n}");

        let col: Vec<ValueId> = (0..n + 1).map(|i| ValueId::from_raw(i as u32)).collect();
        let rows: Vec<u32> = (0..n).map(|i| ((i * 11) % (n + 1)) as u32).collect();
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        avx2::gather_ids(&col, &rows, &mut fast);
        gather_ids_scalar(&col, &rows, &mut slow);
        assert_eq!(fast, slow, "gather_ids len {n}");

        let run: Vec<ValueId> = (0..n)
            .map(|i| ValueId::from_raw(0x7FFF_FFF0u32.wrapping_add(3 * i as u32)))
            .collect();
        for start in 0..=n {
            for probe in 0..(3 * n + 2) {
                let target = ValueId::from_raw(0x7FFF_FFF0u32.wrapping_add(probe as u32));
                assert_eq!(
                    avx2::gallop_seek(&run, start, target),
                    gallop_seek_scalar(&run, start, target),
                    "gallop_seek len {n}, start {start}, probe {probe}"
                );
            }
        }

        let other: Vec<ValueId> = (0..n)
            .map(|i| ValueId::from_raw(0x7FFF_FFF0u32.wrapping_add(2 * i as u32)))
            .collect();
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        avx2::intersect_sorted(&run, &other, &mut fast);
        intersect_sorted_scalar(&run, &other, &mut slow);
        assert_eq!(fast, slow, "intersect len {n}");
    }
}

/// Deterministic spot-check: a composed filter-select-gather pipeline (the
/// trie build's shape) agrees between the chunked and scalar kernels on a
/// length that exercises every tail path.
#[test]
fn composed_pipeline_agrees() {
    let n = 2 * LANES + 3;
    let a: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw((i % 4) as u32)).collect();
    let b: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw((i % 3) as u32)).collect();
    let mut mask_c = vec![1u8; n];
    let mut mask_s = vec![1u8; n];
    and_equal_mask(&a, &b, &mut mask_c);
    and_equal_mask_scalar(&a, &b, &mut mask_s);
    assert_eq!(mask_c, mask_s);
    let (mut rows_c, mut rows_s) = (Vec::new(), Vec::new());
    select_indices(&mask_c, 0, &mut rows_c);
    select_indices_scalar(&mask_s, 0, &mut rows_s);
    assert_eq!(rows_c, rows_s);
    let (mut out_c, mut out_s) = (Vec::new(), Vec::new());
    gather_ids(&a, &rows_c, &mut out_c);
    gather_ids_scalar(&a, &rows_s, &mut out_s);
    assert_eq!(out_c, out_s);
    // The survivors are exactly the positions where a == b, i.e. where
    // i mod 4 == i mod 3 (i mod 12 ∈ {0, 1, 2}).
    assert_eq!(rows_c, vec![0, 1, 2, 12, 13, 14]);
}
