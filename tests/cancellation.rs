//! Deadline and cancellation acceptance tests.
//!
//! The robustness contract under test (see README § Robustness):
//!
//! * a configured [`EngineConfig::with_deadline`] budget is enforced on a
//!   planted near-miss workload whose uncancelled runtime exceeds the budget
//!   ≥ 10× — the evaluation returns [`EvalError::DeadlineExceeded`] instead
//!   of running to completion;
//! * cancelling a caller-owned [`CancellationToken`] from another thread
//!   makes an in-flight evaluation return within the documented latency
//!   ceiling ([`LATENCY_BOUND`]);
//! * cancellation racing concurrent evaluations over one shared workspace is
//!   **correct-or-`Cancelled`**: every evaluation either returns the right
//!   answer or the typed error, the per-tenant cache ledgers still sum
//!   exactly to the pool, and the workspace stays fully usable (clean re-run
//!   correct, warm re-run all-hits);
//! * every error in the taxonomy implements `std::error::Error`.

use ij_engine::{
    naive_boolean, CancellationToken, EngineConfig, EngineError, EvalError, IntersectionJoinEngine,
    Workspace,
};
use ij_reduction::{forward_reduction, ForwardReduction};
use ij_workloads::{build_scenario, PlantedAnswer, ScenarioConfig, ScenarioFamily};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The documented cancellation-latency ceiling: once a cancel (or deadline
/// expiry) is signalled, an evaluation returns within the time it takes the
/// active workers to reach their next cooperative checkpoint — one
/// check-interval of candidate steps plus a worker join, asserted here as a
/// conservative wall-clock bound that holds on debug builds under load.
const LATENCY_BOUND: Duration = Duration::from_millis(250);

/// A planted near-miss scenario grown until its uncancelled runtime clears
/// `floor`: the last atom's relation is shifted just out of range, so the
/// generic-join search backtracks through every partial match before
/// concluding `false` — the worst case for a deadline to interrupt.
fn grow_near_miss(floor: Duration) -> (ForwardReduction, Duration) {
    let mut last = None;
    for tuples in [100usize, 200, 400, 800, 1600] {
        let cfg = ScenarioConfig::new(ScenarioFamily::SpatialRectangles)
            .with_tuples(tuples)
            .with_seed(3)
            .with_planted(PlantedAnswer::NearMiss);
        let scenario = build_scenario(&cfg);
        let reduction = forward_reduction(&scenario.query, &scenario.database)
            .expect("forward reduction succeeds");
        let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
        let start = Instant::now();
        let stats = engine
            .evaluate_reduction(&reduction)
            .expect("uncancelled evaluation succeeds");
        let uncancelled = start.elapsed();
        assert!(!stats.answer, "near-miss scenario must be unsatisfiable");
        let long_enough = uncancelled >= floor;
        last = Some((reduction, uncancelled));
        if long_enough {
            break;
        }
    }
    last.expect("at least one size was measured")
}

/// Shared fixture: measured once, reused by the deadline and latency tests.
fn fixture() -> &'static (ForwardReduction, Duration) {
    static FIXTURE: OnceLock<(ForwardReduction, Duration)> = OnceLock::new();
    FIXTURE.get_or_init(|| grow_near_miss(Duration::from_millis(100)))
}

/// Acceptance: on a near-miss workload whose uncancelled runtime is ≥ 10×
/// the budget (20× by construction here), the deadline fires as
/// [`EvalError::DeadlineExceeded`] and the evaluation returns within the
/// documented latency ceiling past the budget.
#[test]
fn deadline_interrupts_a_near_miss_evaluation() {
    let (reduction, uncancelled) = fixture();
    let budget = (*uncancelled / 20).max(Duration::from_millis(2));
    assert!(
        *uncancelled >= 10 * budget,
        "fixture too fast: uncancelled {uncancelled:?} vs budget {budget:?}"
    );
    let engine = IntersectionJoinEngine::new(
        EngineConfig::new()
            .with_parallelism(1)
            .with_deadline(budget),
    );
    let start = Instant::now();
    let result = engine.evaluate_reduction(reduction);
    let wall = start.elapsed();
    match result {
        Err(EvalError::DeadlineExceeded {
            elapsed,
            budget: reported,
        }) => {
            assert_eq!(reported, budget);
            assert!(
                elapsed >= reported,
                "deadline reported before it elapsed: {elapsed:?} < {reported:?}"
            );
        }
        other => panic!(
            "a {budget:?} deadline on a {uncancelled:?} workload returned {other:?}, \
             expected DeadlineExceeded"
        ),
    }
    assert!(
        wall <= budget + LATENCY_BOUND,
        "deadline latency {wall:?} exceeded budget {budget:?} + bound {LATENCY_BOUND:?}"
    );
}

/// Cancelling from another thread mid-evaluation: signal→return latency is
/// within [`LATENCY_BOUND`], and the result is the typed `Cancelled` error
/// (or the correct answer, if the evaluation happened to finish first).
#[test]
fn external_cancel_returns_within_the_documented_bound() {
    let (reduction, uncancelled) = fixture();
    let token = CancellationToken::new();
    let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
    let (result, latency) = std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            let result = engine.evaluate_reduction_cancellable(reduction, Some(&token));
            (result, Instant::now())
        });
        // Let the evaluation get well into its search before signalling.
        std::thread::sleep((*uncancelled / 4).min(Duration::from_millis(50)));
        let signalled = Instant::now();
        token.cancel();
        let (result, returned) = worker.join().expect("worker does not panic");
        (result, returned.saturating_duration_since(signalled))
    });
    match result {
        Err(EvalError::Cancelled) => {}
        Ok(stats) => assert!(!stats.answer, "near-miss workload answered true"),
        Err(other) => panic!("external cancel surfaced as {other:?}, expected Cancelled"),
    }
    assert!(
        latency <= LATENCY_BOUND,
        "signal→return latency {latency:?} exceeded the documented bound {LATENCY_BOUND:?}"
    );
}

fn is_std_error<E: std::error::Error + Send + 'static>() {}

/// The whole taxonomy composes as `std::error::Error` values (the engine's
/// `source()` chains are covered by its unit tests).
#[test]
fn error_taxonomy_implements_std_error() {
    is_std_error::<EvalError>();
    is_std_error::<EngineError>();
    is_std_error::<ij_engine::NaiveError>();
    is_std_error::<ij_relation::ArityError>();
    is_std_error::<ij_segtree::IntervalError>();
    is_std_error::<ij_reduction::ReductionError>();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 6 } else { 16 }
    ))]

    /// Cancels at a random point while two tenants evaluate concurrently
    /// over one shared workspace cache.  Every evaluation is
    /// correct-or-`Cancelled`, the per-tenant ledgers still sum exactly to
    /// the pool (abandoned builds leak no accounting), and the workspace
    /// stays fully usable afterwards.
    #[test]
    fn random_cancellation_races_are_correct_or_cancelled(
        delay_us in 0u64..3_000,
        seed in 0u64..64,
    ) {
        let cfg = ScenarioConfig::new(ScenarioFamily::SpatialRectangles)
            .with_tuples(16)
            .with_seed(seed)
            .with_planted(PlantedAnswer::Natural);
        let scenario = build_scenario(&cfg);
        let expected = naive_boolean(&scenario.query, &scenario.database)
            .expect("naive oracle succeeds");

        let ws = Workspace::new();
        let db = ws.import_database(&scenario.database);
        let token = CancellationToken::new().with_check_interval(64);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = ["alpha", "beta"]
                .into_iter()
                .map(|name| {
                    let (ws, db, query, token) = (&ws, &db, &scenario.query, &token);
                    scope.spawn(move || {
                        ws.tenant(name)
                            .engine(EngineConfig::new().with_parallelism(2))
                            .evaluate_cancellable(query, db, Some(token))
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_micros(delay_us));
            token.cancel();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluations never panic"))
                .collect::<Vec<_>>()
        });
        for result in results {
            match result {
                Ok(answer) => prop_assert_eq!(answer, expected),
                Err(EngineError::Evaluation(EvalError::Cancelled)) => {}
                Err(other) => prop_assert!(false, "unexpected error: {:?}", other),
            }
        }

        // Ledger conservation under abandonment: every resident entry is
        // attributed to exactly one tenant, nothing double-counted, nothing
        // leaked mid-build.
        let pool = ws.trie_cache_stats();
        let alpha = ws.tenant("alpha").cache_stats();
        let beta = ws.tenant("beta").cache_stats();
        prop_assert_eq!(alpha.entries + beta.entries, pool.entries);
        prop_assert_eq!(
            alpha.resident_bytes + beta.resident_bytes,
            pool.resident_bytes
        );

        // The workspace survives the interruption: a clean run is correct
        // and a warm repeat serves entirely from the shared cache.
        let engine = ws.tenant("alpha").engine(EngineConfig::new().with_parallelism(1));
        let clean = engine
            .evaluate_with_stats(&scenario.query, &db)
            .expect("clean evaluation after cancellation succeeds");
        prop_assert_eq!(clean.answer, expected);
        let warm = engine
            .evaluate_with_stats(&scenario.query, &db)
            .expect("warm evaluation succeeds");
        prop_assert_eq!(warm.answer, expected);
        prop_assert_eq!(warm.trie_cache.misses, 0);
    }
}
