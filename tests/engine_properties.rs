//! Property-based differential tests of the end-to-end engine
//! (forward reduction + EJ engine) against the naive oracle.

use ij_engine::IntersectionJoinEngine;
use ij_relation::{Database, Query, Value};
use proptest::prelude::*;

/// A strategy for small relations of binary interval tuples with integer
/// endpoints in a window chosen to make both true and false instances likely.
fn arb_binary_relation(
    max_tuples: usize,
    span: i32,
) -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    proptest::collection::vec((0..span, 0..6i32, 0..span, 0..6i32), 1..=max_tuples).prop_map(
        |rows| {
            rows.into_iter()
                .map(|(a, alen, b, blen)| {
                    (a as f64, (a + alen) as f64, b as f64, (b + blen) as f64)
                })
                .collect()
        },
    )
}

type IntervalRows = Vec<(f64, f64, f64, f64)>;

fn binary_db(name_rows: Vec<(&str, IntervalRows)>) -> Database {
    let mut db = Database::new();
    for (name, rows) in name_rows {
        db.insert_tuples(
            name,
            2,
            rows.into_iter()
                .map(|(l1, h1, l2, h2)| vec![Value::interval(l1, h1), Value::interval(l2, h2)])
                .collect(),
        );
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The reduction-based evaluation agrees with the naive oracle on the
    /// triangle query for arbitrary small interval databases.
    #[test]
    fn triangle_engine_matches_oracle(
        r in arb_binary_relation(8, 30),
        s in arb_binary_relation(8, 30),
        t in arb_binary_relation(8, 30),
    ) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let db = binary_db(vec![("R", r), ("S", s), ("T", t)]);
        let engine = IntersectionJoinEngine::with_defaults();
        let expected = engine.evaluate_naive(&q, &db).unwrap();
        prop_assert_eq!(engine.evaluate(&q, &db).unwrap(), expected);
    }

    /// Same for the iota-acyclic path query R([A],[B]) ∧ S([B],[C]).
    #[test]
    fn path_engine_matches_oracle(
        r in arb_binary_relation(10, 25),
        s in arb_binary_relation(10, 25),
    ) {
        let q = Query::parse("R([A],[B]) & S([B],[C])").unwrap();
        let db = binary_db(vec![("R", r), ("S", s)]);
        let engine = IntersectionJoinEngine::with_defaults();
        let expected = engine.evaluate_naive(&q, &db).unwrap();
        prop_assert_eq!(engine.evaluate(&q, &db).unwrap(), expected);
    }

    /// Figure 9f: R([A],[B],[C]) ∧ S([A],[B]) — an iota-acyclic query with a
    /// Berge cycle of length two.
    #[test]
    fn figure_9f_engine_matches_oracle(
        r in proptest::collection::vec((0..20i32, 0..5i32, 0..20i32, 0..5i32, 0..20i32, 0..5i32), 1..8),
        s in arb_binary_relation(8, 20),
    ) {
        let q = Query::parse("R([A],[B],[C]) & S([A],[B])").unwrap();
        let mut db = binary_db(vec![("S", s)]);
        db.insert_tuples(
            "R",
            3,
            r.into_iter()
                .map(|(a, al, b, bl, c, cl)| {
                    vec![
                        Value::interval(a as f64, (a + al) as f64),
                        Value::interval(b as f64, (b + bl) as f64),
                        Value::interval(c as f64, (c + cl) as f64),
                    ]
                })
                .collect(),
        );
        let engine = IntersectionJoinEngine::with_defaults();
        let expected = engine.evaluate_naive(&q, &db).unwrap();
        prop_assert_eq!(engine.evaluate(&q, &db).unwrap(), expected);
    }

    /// Witness counts of the naive evaluator are consistent with the Boolean
    /// answer of the engine.
    #[test]
    fn witness_counts_are_consistent(
        r in arb_binary_relation(6, 20),
        s in arb_binary_relation(6, 20),
        t in arb_binary_relation(6, 20),
    ) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let db = binary_db(vec![("R", r), ("S", s), ("T", t)]);
        let engine = IntersectionJoinEngine::with_defaults();
        let count = ij_engine::naive_count(&q, &db).unwrap();
        let answer = engine.evaluate(&q, &db).unwrap();
        prop_assert_eq!(answer, count > 0);
    }
}
