//! Appendix G — property tests for the disjoint rewriting of the
//! intersection predicate (Lemma G.2).
//!
//! For intervals with pairwise-distinct left endpoints, the ordered-tuple-set
//! rewriting admits exactly one witness when the intervals intersect and none
//! otherwise, whereas the unrestricted rewriting of Lemma 4.3 may admit
//! several.

use ij_reduction::{ordered_witnesses, unique_ordered_witness, unrestricted_witness_count};
use ij_segtree::{Interval, SegmentTree};
use proptest::prelude::*;

/// Strategy: between 1 and 4 intervals with pairwise-distinct left endpoints
/// drawn from a small integer grid (plus a fractional per-index offset to
/// force distinctness) and non-negative lengths.
fn distinct_left_intervals() -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0u32..40, 0u32..25), 1..=4).prop_map(|raw| {
        raw.iter()
            .enumerate()
            .map(|(i, (lo, len))| {
                let lo = *lo as f64 + i as f64 * 0.01;
                Interval::new(lo, lo + *len as f64)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn lemma_g2_exactly_one_witness_iff_intersecting(intervals in distinct_left_intervals()) {
        let tree = SegmentTree::build(&intervals);
        let intersects = Interval::intersect_all(intervals.iter().copied()).is_some();
        let witnesses = ordered_witnesses(&tree, &intervals);
        if intersects {
            prop_assert_eq!(witnesses.len(), 1, "intersecting intervals must have one witness");
        } else {
            prop_assert!(witnesses.is_empty(), "disjoint intervals must have no witness");
        }
    }

    #[test]
    fn direct_construction_matches_the_enumeration(intervals in distinct_left_intervals()) {
        let tree = SegmentTree::build(&intervals);
        let witnesses = ordered_witnesses(&tree, &intervals);
        match unique_ordered_witness(&tree, &intervals) {
            Some(w) => {
                prop_assert_eq!(witnesses.len(), 1);
                prop_assert_eq!(&witnesses[0], &w);
                prop_assert!(w.is_valid(&tree, &intervals));
            }
            None => prop_assert!(witnesses.is_empty()),
        }
    }

    #[test]
    fn unrestricted_rewriting_is_a_superset(intervals in distinct_left_intervals()) {
        let tree = SegmentTree::build(&intervals);
        let ordered = ordered_witnesses(&tree, &intervals).len();
        let unrestricted = unrestricted_witness_count(&tree, &intervals);
        // Lemma 4.3 is still an equivalence (non-empty iff intersecting) but
        // may overcount; the ordered rewriting never admits more witnesses.
        prop_assert!(unrestricted >= ordered);
        let intersects = Interval::intersect_all(intervals.iter().copied()).is_some();
        prop_assert_eq!(unrestricted > 0, intersects);
    }
}
