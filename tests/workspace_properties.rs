//! Property and acceptance tests for the `Workspace` layer (PR 4):
//! workspace-scoped evaluation must be answer-identical to the process-global
//! path, per-database workspaces must bound interned residency (dropping a
//! workspace returns the dictionary to baseline), a single long-lived
//! workspace must preserve cross-evaluation cache warmth, and the trie
//! cache's byte budget must be enforced with LRU evictions.

use ij_engine::{EngineConfig, IntersectionJoinEngine, Workspace, WorkspaceLimits};
use ij_relation::{Database, Dictionary, Query, Value};
use ij_workloads::{generate_for_query, IntervalDistribution, WorkloadConfig};
use proptest::prelude::*;

/// Serializes the tests of this file: they assert that scoped work leaves
/// `Dictionary::shared_len()` unchanged, which would race against a
/// concurrently running sibling test interning workload values globally.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn triangle() -> Query {
    Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap()
}

fn workload(seed: u64, tuples: usize) -> Database {
    generate_for_query(
        &triangle(),
        &WorkloadConfig {
            tuples_per_relation: tuples,
            seed,
            distribution: IntervalDistribution::Uniform {
                span: 120.0,
                max_len: 25.0,
            },
        },
    )
}

/// A random interval over a small integer domain (ties and overlaps likely).
fn arb_interval() -> impl Strategy<Value = Value> {
    (0i32..14, 0i32..5).prop_map(|(lo, len)| Value::interval(lo as f64, (lo + len) as f64))
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Value, Value)>> {
    proptest::collection::vec((arb_interval(), arb_interval()), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two sequentially-created workspaces evaluating the same query and
    /// database produce the same answer as the process-global path, and the
    /// second workspace's dictionary starts from the empty baseline after
    /// the first workspace drops — scoped interning leaks into neither the
    /// global store nor later workspaces.
    #[test]
    fn sequential_workspaces_agree_with_the_global_path(
        r in arb_rows(6),
        s in arb_rows(6),
        t in arb_rows(6),
    ) {
        let _serial = serial();
        let query = triangle();
        let mut global_db = Database::new();
        for (name, rows) in [("R", &r), ("S", &s), ("T", &t)] {
            global_db.insert_tuples(name, 2, rows.iter().map(|&(a, b)| vec![a, b]).collect());
        }
        let expected = IntersectionJoinEngine::with_defaults()
            .evaluate(&query, &global_db)
            .unwrap();

        // Sequential workers make the early-exit point — and hence the
        // placeholder interning of the enumerate path — deterministic, so
        // both workspaces end at the same residency.
        let config = EngineConfig::new().with_parallelism(1);
        let first = Workspace::new();
        let db = first.import_database(&global_db);
        let global_before = Dictionary::shared_len();
        prop_assert_eq!(
            first.engine(config).evaluate(&query, &db).unwrap(),
            expected
        );
        let first_residency = first.dictionary_len();
        prop_assert!(first_residency > 0);
        // Scoped evaluation interned nothing globally.
        prop_assert_eq!(Dictionary::shared_len(), global_before);
        drop(db);
        drop(first);

        // After the first workspace drops, a sequentially-created second
        // workspace starts at the empty baseline and reproduces the answer.
        let second = Workspace::new();
        prop_assert_eq!(second.dictionary_len(), 0);
        let db = second.import_database(&global_db);
        prop_assert_eq!(
            second.engine(config).evaluate(&query, &db).unwrap(),
            expected
        );
        prop_assert_eq!(second.dictionary_len(), first_residency);
        prop_assert_eq!(Dictionary::shared_len(), global_before);
    }
}

/// Evaluating a sequence of distinct databases in per-database workspaces
/// keeps peak dictionary residency bounded: each workspace holds only its own
/// database's values (position in the sequence is irrelevant), the global
/// dictionary sees none of them, and dropping a workspace releases its
/// residency (a fresh workspace is back at the empty baseline).
#[test]
fn per_database_workspaces_bound_dictionary_residency() {
    let _serial = serial();
    let query = triangle();
    // Generate the (globally interned) source databases *before* snapshotting
    // the global dictionary: only the scoped work below must leave it alone.
    let sources: Vec<Database> = (0..6).map(|seed| workload(seed, 10)).collect();
    let residency_of = |source: &Database| {
        let ws = Workspace::new();
        let db = ws.import_database(source);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));
        let _ = engine.evaluate(&query, &db).unwrap();
        ws.dictionary_len()
    };
    let global_before = Dictionary::shared_len();
    let first_pass: Vec<usize> = sources.iter().map(residency_of).collect();
    let peak = *first_pass.iter().max().unwrap();
    assert!(peak > 0);
    // The global dictionary is untouched by any number of scoped databases…
    assert_eq!(Dictionary::shared_len(), global_before);
    // …and residency is a per-database property, not a function of how many
    // databases were evaluated before: replaying the sequence reproduces the
    // same per-workspace residencies (the process-global path would instead
    // accrete every distinct database's values).
    let second_pass: Vec<usize> = sources.iter().map(residency_of).collect();
    assert_eq!(first_pass, second_pass);
    assert_eq!(Dictionary::shared_len(), global_before);
}

/// A single long-lived workspace preserves the cross-evaluation cache-hit
/// behaviour of the per-engine persistent cache: a warm repeat evaluation
/// reports zero misses — including from an engine constructed *after* the
/// cache was warmed.
#[test]
fn single_workspace_preserves_cross_evaluation_warmth() {
    let _serial = serial();
    let query = triangle();
    let ws = Workspace::new();
    let db = ws.import_database(&workload(7, 10));
    let engine = ws.engine(EngineConfig::new().with_parallelism(1));
    let cold = engine.evaluate_with_stats(&query, &db).unwrap();
    assert!(cold.trie_cache.misses > 0);
    let warm = engine.evaluate_with_stats(&query, &db).unwrap();
    assert_eq!(warm.answer, cold.answer);
    assert_eq!(warm.trie_cache.misses, 0, "{:?}", warm.trie_cache);
    assert!(warm.trie_cache.hits > 0);
    // A per-request engine built now — after the warm-up — starts warm too.
    let fresh = ws.engine(EngineConfig::new().with_parallelism(1));
    let warm_fresh = fresh.evaluate_with_stats(&query, &db).unwrap();
    assert_eq!(
        warm_fresh.trie_cache.misses, 0,
        "{:?}",
        warm_fresh.trie_cache
    );
    assert!(warm_fresh.trie_cache.hits > 0);
}

/// The trie cache's byte budget is enforced: a sequence of distinct
/// databases inserts more trie bytes than the budget admits, evictions are
/// observed, and the resident-bytes stat never exceeds the budget.
#[test]
fn trie_cache_byte_budget_is_enforced_with_evictions() {
    let _serial = serial();
    let query = triangle();
    // Measure the resident footprint of one database's tries on an
    // unbounded workspace, then budget for about two databases and insert
    // six distinct ones.
    let probe = Workspace::new();
    let db = probe.import_database(&workload(0, 10));
    let _ = probe
        .engine(EngineConfig::new().with_parallelism(1))
        .evaluate(&query, &db)
        .unwrap();
    let per_db = probe.trie_cache_stats().resident_bytes;
    assert!(per_db > 0);

    let budget = 2 * per_db;
    let ws = Workspace::with_limits(WorkspaceLimits::new().with_trie_cache_bytes(budget));
    for seed in 0..6 {
        let db = ws.import_database(&workload(seed, 10));
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));
        let _ = engine.evaluate(&query, &db).unwrap();
        let stats = ws.trie_cache_stats();
        assert!(
            stats.resident_bytes <= budget,
            "resident {} exceeds budget {budget}",
            stats.resident_bytes
        );
    }
    let stats = ws.trie_cache_stats();
    assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
    assert!(stats.resident_bytes <= budget);
    // The byte budget bounds memory, never correctness: answers above were
    // all computed through the evicting cache and the engine still answers
    // a repeat query correctly.
    let db = ws.import_database(&workload(0, 10));
    let engine = ws.engine(EngineConfig::new().with_parallelism(1));
    assert_eq!(
        engine.evaluate(&query, &db).unwrap(),
        IntersectionJoinEngine::with_defaults()
            .evaluate(&query, &workload(0, 10))
            .unwrap()
    );
}
