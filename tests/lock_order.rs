//! Lock-order regression suite: the engine's normal warm-evaluation path
//! (dictionary stripes + trie-cache map/tenants + plan-activity locks)
//! must record an **acyclic** acquisition-order graph in the runtime
//! lock-order detector (`ij_relation::sync::lock_order`).
//!
//! The detector is active under `debug_assertions` or the `lock-order`
//! feature; when neither is on (plain `--release`), these tests degrade to
//! trivially-true assertions on the empty graph rather than silently
//! vanishing from the test list.
//!
//! The two-thread inverted-order *cycle* case lives next to the detector
//! (`ij_relation::sync::tests::detects_inverted_acquisition_order_across_threads`);
//! this suite covers the other acceptance half: real workloads stay silent.

use ij_relation::sync::lock_order;
use intersection_joins::prelude::*;

fn iv(lo: f64, hi: f64) -> Value {
    Value::interval(lo, hi)
}

/// Drives the full pipeline twice (cold build + warm cache hit), plus the
/// tenant-accounting read path that nests the cache's tenants lock under
/// its map lock.
fn drive_warm_path(workspace: &Workspace) {
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").expect("valid query");
    let mut db = workspace.database();
    db.insert_tuples(
        "R",
        2,
        vec![
            vec![iv(0.0, 4.0), iv(10.0, 14.0)],
            vec![iv(100.0, 105.0), iv(200.0, 205.0)],
        ],
    );
    db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);

    let engine = workspace.engine(EngineConfig::new());
    assert!(engine.evaluate(&query, &db).expect("cold evaluation"));
    assert!(engine.evaluate(&query, &db).expect("warm evaluation"));

    let tenant = workspace.tenant("lock-order-test");
    let t_engine = tenant.engine(EngineConfig::new());
    assert!(t_engine.evaluate(&query, &db).expect("tenant evaluation"));
    let stats = tenant.cache_stats();
    assert!(
        stats.hits + stats.misses > 0,
        "tenant evaluation was metered"
    );
}

#[test]
fn warm_evaluation_path_records_an_acyclic_lock_order() {
    let workspace = Workspace::new();
    drive_warm_path(&workspace);

    // A cycle would already have panicked inside the recover helpers; the
    // graph-level probe also proves the recorded edges stay consistent.
    assert_eq!(
        lock_order::find_cycle(),
        None,
        "engine warm path recorded a cyclic lock order: {:?}",
        lock_order::snapshot()
    );

    if lock_order::enabled() {
        let classes = lock_order::classes_seen();
        for expected in ["dict-stripe", "trie-cache-map", "trie-cache-tenants"] {
            assert!(
                classes.contains(&expected),
                "expected lock class `{expected}` on the warm path; saw {classes:?}"
            );
        }
        // The one deliberate nesting on this path: tenant accounting reads
        // the tenants ledger while holding the cache map lock.
        assert!(
            lock_order::snapshot()
                .iter()
                .any(|&(from, to)| from == "trie-cache-map" && to == "trie-cache-tenants"),
            "expected the map→tenants nesting edge; snapshot: {:?}",
            lock_order::snapshot()
        );
    } else {
        assert!(lock_order::snapshot().is_empty());
        assert!(lock_order::classes_seen().is_empty());
    }
}

#[test]
fn concurrent_engines_share_one_acyclic_order() {
    // Two workspaces evaluated from four threads: per-thread held stacks
    // must not cross-contaminate, and the global graph must stay acyclic.
    let a = Workspace::new();
    let b = Workspace::new();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| drive_warm_path(&a));
            scope.spawn(|| drive_warm_path(&b));
        }
    });
    assert_eq!(
        lock_order::find_cycle(),
        None,
        "concurrent warm paths recorded a cyclic lock order: {:?}",
        lock_order::snapshot()
    );
}
