//! E5 — property-based tests for the acyclicity notions (Section 6,
//! Appendix A.1, Figure 5).
//!
//! Random hypergraphs are generated with proptest and the following
//! invariants are checked:
//!
//! * Theorem 6.3: the syntactic characterisation of ι-acyclicity ("no Berge
//!   cycle of length > 2") coincides with Definition 6.1 ("every hypergraph
//!   of τ(H) is α-acyclic");
//! * the strict inclusion chain Berge ⊆ ι ⊆ γ ⊆ α of Corollary 6.4/E.6;
//! * Definition A.9: GYO-reducibility coincides with conformal + cycle-free;
//! * α-acyclicity coincides with the existence of a valid join tree.

use ij_hypergraph::{
    is_alpha_acyclic, is_berge_acyclic, is_conformal, is_cycle_free, is_gamma_acyclic,
    is_iota_acyclic, is_iota_acyclic_via_reduction, join_tree, Hypergraph,
};
use proptest::prelude::*;

/// A random multi-hypergraph with up to `max_vars` interval variables and up
/// to `max_edges` hyperedges of size 1..=3.
fn arb_hypergraph(max_vars: usize, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    let vars = 2..=max_vars;
    vars.prop_flat_map(move |nv| {
        let edge = proptest::collection::btree_set(0..nv, 1..=3.min(nv));
        proptest::collection::vec(edge, 1..=max_edges).prop_map(move |edges| {
            let mut h = Hypergraph::new();
            for v in 0..nv {
                h.add_interval_var(format!("X{v}"));
            }
            for (i, e) in edges.into_iter().enumerate() {
                h.add_edge(format!("R{i}"), e);
            }
            h
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Theorem 6.3: syntactic and reduction-based iota-acyclicity agree.
    #[test]
    fn iota_characterisation_matches_definition(h in arb_hypergraph(5, 4)) {
        prop_assert_eq!(is_iota_acyclic(&h), is_iota_acyclic_via_reduction(&h));
    }

    /// Corollary 6.4 / E.6: Berge ⊆ iota ⊆ gamma ⊆ alpha.
    #[test]
    fn acyclicity_inclusions(h in arb_hypergraph(6, 5)) {
        if is_berge_acyclic(&h) {
            prop_assert!(is_iota_acyclic(&h));
        }
        if is_iota_acyclic(&h) {
            prop_assert!(is_gamma_acyclic(&h));
        }
        if is_gamma_acyclic(&h) {
            prop_assert!(is_alpha_acyclic(&h));
        }
    }

    /// Definition A.9: GYO reduction ⟺ conformal and cycle-free.
    #[test]
    fn alpha_acyclicity_characterisations_agree(h in arb_hypergraph(6, 5)) {
        prop_assert_eq!(is_alpha_acyclic(&h), is_conformal(&h) && is_cycle_free(&h));
    }

    /// Join trees exist exactly for alpha-acyclic hypergraphs and satisfy the
    /// running-intersection property.
    #[test]
    fn join_tree_existence(h in arb_hypergraph(6, 5)) {
        match join_tree(&h) {
            Some(tree) => {
                prop_assert!(is_alpha_acyclic(&h));
                prop_assert!(tree.is_valid(&h));
            }
            None => {
                // `join_tree` returns None for empty hypergraphs too; the
                // generator always creates at least one edge.
                prop_assert!(!is_alpha_acyclic(&h));
            }
        }
    }

    /// ι-acyclicity is preserved by removing hyperedges (it is defined by the
    /// absence of a structure, so deleting an edge cannot create one).
    #[test]
    fn iota_acyclicity_is_monotone_under_edge_removal(h in arb_hypergraph(5, 4)) {
        if is_iota_acyclic(&h) && h.num_edges() > 1 {
            // Drop the last edge.
            let mut g = Hypergraph::new();
            for v in h.vertices() {
                g.add_vertex(v.name.clone(), v.kind);
            }
            for e in &h.edges()[..h.num_edges() - 1] {
                g.add_edge(e.label.clone(), e.vertices.iter().copied());
            }
            prop_assert!(is_iota_acyclic(&g));
        }
    }
}
