//! E10 — correctness of the forward reduction (Lemma 4.11 / Theorem 4.13).
//!
//! Differential testing: evaluating an IJ query through the forward reduction
//! and the equality-join engine must agree with the naive reference evaluator
//! on every database.  Exercised over the paper's catalog queries and random
//! synthetic workloads with several densities and seeds; planted satisfiable
//! and unsatisfiable instances guarantee that both outcomes are covered
//! deterministically.
//!
//! Debug builds shrink the generated workload sizes (`scaled_tuples` /
//! `scaled_seeds`) so the dev-loop `cargo test` is not dominated by the
//! exhaustive naive oracle; release builds exercise the full sizes.

use ij_ejoin::EjStrategy;
use ij_engine::{EngineConfig, IntersectionJoinEngine};
use ij_hypergraph::{
    figure_9b, figure_9c, figure_9d, figure_9e, figure_9f, k_path_ij, star_ij, triangle_ij,
    Hypergraph,
};
use ij_relation::Query;
use ij_workloads::{
    generate_for_query, planted_satisfiable, planted_unsatisfiable, IntervalDistribution,
    WorkloadConfig,
};

/// Workload scale for this file.  The naive oracle is exhaustive
/// backtracking, so these differential loops dominate the tier-1 wall clock
/// in unoptimised builds (~3 minutes at the full sizes).  Debug builds — the
/// dev loop — shrink the tuple counts and seed ranges; release builds (and
/// the release half of tier-1 CI) keep the full coverage.
fn scaled_tuples(tuples: usize) -> usize {
    if cfg!(debug_assertions) {
        tuples.div_ceil(2).max(4)
    } else {
        tuples
    }
}

/// Debug builds run the first quarter of the seed range (at least 2 seeds);
/// release builds run all of it.
fn scaled_seeds(seeds: std::ops::Range<u64>) -> std::ops::Range<u64> {
    if cfg!(debug_assertions) {
        let len = seeds.end.saturating_sub(seeds.start);
        seeds.start..seeds.start + (len / 4).max(2).min(len)
    } else {
        seeds
    }
}

/// Differential check of the reduction-based evaluation against the naive
/// oracle: random workloads check agreement, planted instances guarantee that
/// both the `true` and the `false` outcome are exercised.
fn differential(
    query: &Query,
    tuples: usize,
    seeds: std::ops::Range<u64>,
    dist: IntervalDistribution,
) {
    differential_with(
        &IntersectionJoinEngine::with_defaults(),
        query,
        tuples,
        seeds,
        dist,
    );
}

fn differential_with(
    engine: &IntersectionJoinEngine,
    query: &Query,
    tuples: usize,
    seeds: std::ops::Range<u64>,
    dist: IntervalDistribution,
) {
    let tuples = scaled_tuples(tuples);
    for seed in scaled_seeds(seeds) {
        let cfg = WorkloadConfig {
            tuples_per_relation: tuples,
            seed,
            distribution: dist,
        };
        let db = generate_for_query(query, &cfg);
        let expected = engine.evaluate_naive(query, &db).expect("naive evaluation");
        let actual = engine
            .evaluate(query, &db)
            .expect("reduction-based evaluation");
        assert_eq!(actual, expected, "query {query}, seed {seed}");

        // Planted instances: deterministically satisfiable / unsatisfiable.
        let sat = planted_satisfiable(query, &cfg);
        assert!(
            engine.evaluate_naive(query, &sat).unwrap(),
            "planted-sat naive, seed {seed}"
        );
        assert!(
            engine.evaluate(query, &sat).unwrap(),
            "planted-sat reduction, seed {seed}"
        );

        let unsat = planted_unsatisfiable(query, &cfg);
        assert!(
            !engine.evaluate_naive(query, &unsat).unwrap(),
            "planted-unsat naive, seed {seed}"
        );
        assert!(
            !engine.evaluate(query, &unsat).unwrap(),
            "planted-unsat reduction, seed {seed}"
        );
    }
}

fn query_of(h: &Hypergraph) -> Query {
    Query::from_hypergraph(h)
}

fn decomposed_engine() -> IntersectionJoinEngine {
    IntersectionJoinEngine::new(EngineConfig::decomposed())
}

#[test]
fn triangle_reduction_is_correct_on_sparse_workloads() {
    differential(
        &query_of(&triangle_ij()),
        12,
        0..20,
        IntervalDistribution::Uniform {
            span: 400.0,
            max_len: 30.0,
        },
    );
}

#[test]
fn triangle_reduction_is_correct_on_dense_workloads() {
    differential(
        &query_of(&triangle_ij()),
        10,
        100..112,
        IntervalDistribution::Uniform {
            span: 60.0,
            max_len: 18.0,
        },
    );
}

#[test]
fn figure_9_queries_are_correct() {
    // One representative workload per Figure 9 hypergraph (9a is covered by
    // the spatial example; 9b-9f here).
    for (h, span) in [
        (figure_9b(), 90.0),
        (figure_9c(), 70.0),
        (figure_9d(), 90.0),
        (figure_9e(), 40.0),
        (figure_9f(), 60.0),
    ] {
        differential(
            &query_of(&h),
            8,
            0..8,
            IntervalDistribution::Uniform {
                span,
                max_len: 10.0,
            },
        );
    }
}

#[test]
fn star_and_path_queries_are_correct() {
    differential(
        &query_of(&star_ij(3)),
        10,
        0..10,
        IntervalDistribution::Uniform {
            span: 150.0,
            max_len: 25.0,
        },
    );
    differential(
        &query_of(&k_path_ij(4)),
        10,
        0..10,
        IntervalDistribution::Uniform {
            span: 60.0,
            max_len: 10.0,
        },
    );
}

#[test]
fn heavy_tailed_intervals_are_correct() {
    differential(
        &query_of(&triangle_ij()),
        10,
        0..12,
        IntervalDistribution::HeavyTailed {
            span: 300.0,
            alpha: 1.2,
            scale: 8.0,
        },
    );
}

#[test]
fn point_interval_workloads_degenerate_to_equality_joins() {
    differential(
        &query_of(&triangle_ij()),
        15,
        0..15,
        IntervalDistribution::Points { domain: 9 },
    );
}

#[test]
fn grid_aligned_workloads_are_correct() {
    differential(
        &query_of(&triangle_ij()),
        14,
        0..12,
        IntervalDistribution::GridAligned {
            span: 128.0,
            cells: 32,
            max_cells: 3,
        },
    );
}

#[test]
fn decomposed_encoding_is_correct_on_triangle_workloads() {
    // The decomposed (Id-based) encoding of Section 1.1 must agree with the
    // naive oracle exactly like the flat encoding does.
    differential_with(
        &decomposed_engine(),
        &query_of(&triangle_ij()),
        12,
        0..12,
        IntervalDistribution::Uniform {
            span: 150.0,
            max_len: 20.0,
        },
    );
}

#[test]
fn all_ej_strategies_agree_through_the_reduction() {
    let query = query_of(&triangle_ij());
    for strategy in [
        EjStrategy::Auto,
        EjStrategy::GenericJoin,
        EjStrategy::Decomposition,
    ] {
        let engine = IntersectionJoinEngine::new(EngineConfig {
            ej_strategy: strategy,
            ..EngineConfig::new()
        });
        for seed in scaled_seeds(0..10) {
            let db = generate_for_query(
                &query,
                &WorkloadConfig {
                    tuples_per_relation: scaled_tuples(10),
                    seed,
                    distribution: IntervalDistribution::Uniform {
                        span: 80.0,
                        max_len: 15.0,
                    },
                },
            );
            let expected = engine.evaluate_naive(&query, &db).unwrap();
            assert_eq!(
                engine.evaluate(&query, &db).unwrap(),
                expected,
                "{strategy:?} seed {seed}"
            );
        }
    }
}

#[test]
fn loomis_whitney_4_reduction_is_correct_on_small_instances() {
    // LW4 produces 1296 reduced queries and its ternary atoms make the flat
    // encoding blow up by a (log² N)³ factor per atom, so this test uses the
    // decomposed encoding (Section 1.1) and keeps the data tiny.
    use ij_hypergraph::loomis_whitney_4_ij;
    let query = query_of(&loomis_whitney_4_ij());
    let engine = decomposed_engine();
    let mut outcomes = [0usize; 2];
    for (seed, span) in [(0u64, 60.0), (1u64, 12.0)] {
        let db = generate_for_query(
            &query,
            &WorkloadConfig {
                tuples_per_relation: 3,
                seed,
                distribution: IntervalDistribution::Uniform { span, max_len: 6.0 },
            },
        );
        let expected = engine.evaluate_naive(&query, &db).unwrap();
        let actual = engine.evaluate(&query, &db).unwrap();
        assert_eq!(actual, expected, "seed {seed}");
        outcomes[usize::from(expected)] += 1;
    }
    assert!(outcomes[0] + outcomes[1] == 2);

    // Planted instances cover both outcomes deterministically.
    let cfg = WorkloadConfig {
        tuples_per_relation: 2,
        seed: 7,
        distribution: IntervalDistribution::Uniform {
            span: 40.0,
            max_len: 6.0,
        },
    };
    assert!(engine
        .evaluate(&query, &planted_satisfiable(&query, &cfg))
        .unwrap());
    assert!(!engine
        .evaluate(&query, &planted_unsatisfiable(&query, &cfg))
        .unwrap());
}

#[test]
fn four_clique_reduction_is_correct_on_small_instances() {
    use ij_hypergraph::four_clique_ij;
    let query = query_of(&four_clique_ij());
    let engine = decomposed_engine();
    for (seed, span) in [(0u64, 50.0), (1u64, 8.0)] {
        let db = generate_for_query(
            &query,
            &WorkloadConfig {
                tuples_per_relation: 3,
                seed,
                distribution: IntervalDistribution::Uniform { span, max_len: 5.0 },
            },
        );
        let expected = engine.evaluate_naive(&query, &db).unwrap();
        assert_eq!(
            engine.evaluate(&query, &db).unwrap(),
            expected,
            "seed {seed}"
        );
    }

    let cfg = WorkloadConfig {
        tuples_per_relation: 2,
        seed: 3,
        distribution: IntervalDistribution::Uniform {
            span: 30.0,
            max_len: 5.0,
        },
    };
    assert!(engine
        .evaluate(&query, &planted_satisfiable(&query, &cfg))
        .unwrap());
    assert!(!engine
        .evaluate(&query, &planted_unsatisfiable(&query, &cfg))
        .unwrap());
}

#[test]
fn mixed_eij_queries_are_correct() {
    // Equality join on a point variable plus intersection joins.
    let query = Query::parse("R(K,[A],[B]) & S(K,[B],[C]) & T([A],[C])").unwrap();
    let engine = IntersectionJoinEngine::with_defaults();
    for seed in scaled_seeds(0..15) {
        let db = generate_for_query(
            &query,
            &WorkloadConfig {
                tuples_per_relation: scaled_tuples(10),
                seed,
                distribution: IntervalDistribution::Uniform {
                    span: 80.0,
                    max_len: 20.0,
                },
            },
        );
        let expected = engine.evaluate_naive(&query, &db).unwrap();
        assert_eq!(
            engine.evaluate(&query, &db).unwrap(),
            expected,
            "seed {seed}"
        );
    }
}

#[test]
fn distinct_left_endpoint_transformation_preserves_answers() {
    // Appendix G.1: shifting the intervals so that left endpoints become
    // distinct across relations must not change the answer.
    let query = query_of(&triangle_ij());
    let engine = IntersectionJoinEngine::with_defaults();
    for seed in scaled_seeds(0..10) {
        let db = generate_for_query(
            &query,
            &WorkloadConfig {
                tuples_per_relation: scaled_tuples(10),
                seed,
                distribution: IntervalDistribution::GridAligned {
                    span: 64.0,
                    cells: 16,
                    max_cells: 4,
                },
            },
        );
        let mut shifted = db.clone();
        shifted.shift_left_endpoints(&["R", "S", "T"]);
        let before = engine.evaluate(&query, &db).unwrap();
        let after = engine.evaluate(&query, &shifted).unwrap();
        assert_eq!(before, after, "seed {seed}");
    }
}
