//! E11 — the FAQ-AI comparator agrees with the reduction-based engine and
//! with the naive oracle on every database (they solve the same Boolean
//! problem by different routes: inequality joins over relaxed decompositions
//! versus equality joins over segment-tree bitstrings).

use ij_engine::IntersectionJoinEngine;
use ij_faqai::{analyze_disjunction, evaluate_faqai_boolean, faqai_disjunction};
use ij_hypergraph::{figure_9d, figure_9e, k_path_ij, triangle_ij};
use ij_relation::Query;
use ij_widths::ij_width;
use ij_workloads::{
    generate_for_query, planted_satisfiable, planted_unsatisfiable, IntervalDistribution,
    WorkloadConfig,
};

fn agreement(query: &Query, tuples: usize, seeds: std::ops::Range<u64>, span: f64) {
    let engine = IntersectionJoinEngine::with_defaults();
    for seed in seeds {
        let cfg = WorkloadConfig {
            tuples_per_relation: tuples,
            seed,
            distribution: IntervalDistribution::Uniform {
                span,
                max_len: span / 12.0,
            },
        };
        let db = generate_for_query(query, &cfg);
        let naive = engine.evaluate_naive(query, &db).unwrap();
        let reduction = engine.evaluate(query, &db).unwrap();
        let faqai = evaluate_faqai_boolean(query, &db).unwrap();
        assert_eq!(naive, reduction, "query {query}, seed {seed}");
        assert_eq!(naive, faqai, "query {query}, seed {seed}");

        let sat = planted_satisfiable(query, &cfg);
        assert!(
            evaluate_faqai_boolean(query, &sat).unwrap(),
            "planted-sat seed {seed}"
        );
        let unsat = planted_unsatisfiable(query, &cfg);
        assert!(
            !evaluate_faqai_boolean(query, &unsat).unwrap(),
            "planted-unsat seed {seed}"
        );
    }
}

#[test]
fn faqai_agrees_on_the_triangle() {
    agreement(&Query::from_hypergraph(&triangle_ij()), 10, 0..12, 120.0);
}

#[test]
fn faqai_agrees_on_acyclic_queries() {
    agreement(&Query::from_hypergraph(&k_path_ij(4)), 8, 0..8, 60.0);
    agreement(&Query::from_hypergraph(&figure_9e()), 6, 0..8, 40.0);
}

#[test]
fn faqai_agrees_on_iota_acyclic_queries_with_ternary_atoms() {
    agreement(&Query::from_hypergraph(&figure_9d()), 6, 0..6, 30.0);
}

#[test]
fn relaxed_width_never_beats_the_ij_width_on_the_paper_queries() {
    // Appendix F: the FAQ-AI exponent is at least the ij-width for the
    // paper's queries (the reduction approach is never worse).
    for h in [triangle_ij(), figure_9d(), k_path_ij(3)] {
        let q = Query::from_hypergraph(&h);
        let conjuncts = faqai_disjunction(&q).unwrap();
        let relaxed = analyze_disjunction(&conjuncts);
        let ours = ij_width(&h);
        assert!(
            relaxed.width as f64 + 1e-9 >= ours.value,
            "query {q}: relaxed width {} < ij-width {}",
            relaxed.width,
            ours.value
        );
    }
}
