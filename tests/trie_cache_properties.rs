//! Property tests for the shared trie cache and the sharded trie builds
//! (PR 2): on random interval workloads, cached-trie evaluation must be
//! indistinguishable from rebuild-per-disjunct evaluation, at every
//! parallelism and shard-count setting, and must agree with the naive
//! reference evaluator.

use ij_engine::{EngineConfig, IntersectionJoinEngine};
use ij_relation::{Database, Query, Value};
use proptest::prelude::*;

/// A random interval over a small integer domain (ties and overlaps likely).
fn arb_interval() -> impl Strategy<Value = Value> {
    (0i32..14, 0i32..5).prop_map(|(lo, len)| Value::interval(lo as f64, (lo + len) as f64))
}

/// Random rows of interval pairs.
fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Value, Value)>> {
    proptest::collection::vec((arb_interval(), arb_interval()), 1..=max)
}

fn db_of(rows: [(&str, &Vec<(Value, Value)>); 3]) -> Database {
    let mut db = Database::new();
    for (name, rows) in rows {
        db.insert_tuples(name, 2, rows.iter().map(|&(a, b)| vec![a, b]).collect());
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached-trie evaluation ≡ rebuild-per-disjunct evaluation on random
    /// triangle workloads (the E1 cyclic query), across parallelism and
    /// shard-count settings, and both agree with the naive oracle.
    #[test]
    fn cached_evaluation_matches_rebuild_per_disjunct(
        r in arb_rows(6),
        s in arb_rows(6),
        t in arb_rows(6),
    ) {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let db = db_of([("R", &r), ("S", &s), ("T", &t)]);
        let expected = IntersectionJoinEngine::with_defaults()
            .evaluate_naive(&query, &db)
            .unwrap();
        for parallelism in [1usize, 2] {
            for shards in [1usize, 2, 3] {
                for capacity in [0usize, 4096] {
                    let engine = IntersectionJoinEngine::new(
                        EngineConfig::new()
                            .with_parallelism(parallelism)
                            .with_trie_shards(shards)
                            .with_trie_cache_capacity(capacity),
                    );
                    prop_assert_eq!(
                        engine.evaluate(&query, &db).unwrap(),
                        expected,
                        "parallelism {}, shards {}, capacity {}",
                        parallelism, shards, capacity
                    );
                }
            }
        }
    }

    /// Persistent-cache equivalence: one long-lived engine evaluating a
    /// *sequence* of random databases — its cache surviving (and, at tiny
    /// capacities, evicting) across evaluations — must answer every query
    /// exactly like a cold engine created fresh for that database, and like
    /// the naive oracle.  Exercises cross-evaluation reuse, LRU eviction and
    /// the disabled-cache path side by side.
    #[test]
    fn persistent_cache_eviction_never_changes_answers(
        dbs in proptest::collection::vec((arb_rows(5), arb_rows(5), arb_rows(5)), 2..=4),
        capacity_choice in 0usize..4,
    ) {
        let capacity = [1usize, 2, 3, 4096][capacity_choice];
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let warm = IntersectionJoinEngine::new(
            EngineConfig::new()
                .with_parallelism(1)
                .with_trie_cache_capacity(capacity),
        );
        let uncached = IntersectionJoinEngine::new(
            EngineConfig::new()
                .with_parallelism(1)
                .with_trie_cache_capacity(0),
        );
        for (r, s, t) in &dbs {
            let db = db_of([("R", r), ("S", s), ("T", t)]);
            let expected = IntersectionJoinEngine::with_defaults()
                .evaluate_naive(&query, &db)
                .unwrap();
            let cold = IntersectionJoinEngine::new(
                EngineConfig::new()
                    .with_parallelism(1)
                    .with_trie_cache_capacity(capacity),
            );
            prop_assert_eq!(warm.evaluate(&query, &db).unwrap(), expected, "warm, capacity {}", capacity);
            prop_assert_eq!(cold.evaluate(&query, &db).unwrap(), expected, "cold, capacity {}", capacity);
            prop_assert_eq!(uncached.evaluate(&query, &db).unwrap(), expected, "uncached");
            // Re-evaluating the same database warm must also agree (the
            // second pass is served mostly from the persistent cache).
            prop_assert_eq!(warm.evaluate(&query, &db).unwrap(), expected, "warm repeat");
        }
    }

    /// The same equivalence on an acyclic (path) query, which exercises the
    /// Yannakakis branch next to the trie-building ones.
    #[test]
    fn cached_evaluation_matches_on_acyclic_queries(
        r in arb_rows(6),
        s in arb_rows(6),
        t in arb_rows(6),
    ) {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([C],[D])").unwrap();
        let db = db_of([("R", &r), ("S", &s), ("T", &t)]);
        let expected = IntersectionJoinEngine::with_defaults()
            .evaluate_naive(&query, &db)
            .unwrap();
        for shards in [1usize, 4] {
            for capacity in [0usize, 4096] {
                let engine = IntersectionJoinEngine::new(
                    EngineConfig::new()
                        .with_trie_shards(shards)
                        .with_trie_cache_capacity(capacity),
                );
                prop_assert_eq!(engine.evaluate(&query, &db).unwrap(), expected);
            }
        }
    }
}

/// Deterministic (non-property) check that the cache is actually exercised:
/// a disjunction with shared atoms must record hits, and the hit-serving
/// evaluation must report the same answer and disjunct counts as the
/// rebuilding one.
#[test]
fn cache_hits_are_recorded_and_answer_preserving() {
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    let mut db = Database::new();
    // Planted unsatisfiable: pairwise overlaps exist but no triple does.
    db.insert_tuples("R", 2, vec![vec![iv(0.0, 2.0), iv(10.0, 12.0)]]);
    db.insert_tuples("S", 2, vec![vec![iv(11.0, 13.0), iv(20.0, 22.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(1.0, 3.0), iv(30.0, 31.0)]]);

    let shared = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
    let rebuild = IntersectionJoinEngine::new(
        EngineConfig::new()
            .with_parallelism(1)
            .with_trie_cache_capacity(0),
    );
    let shared_stats = shared.evaluate_with_stats(&query, &db).unwrap();
    let rebuild_stats = rebuild.evaluate_with_stats(&query, &db).unwrap();
    assert!(!shared_stats.answer);
    assert_eq!(shared_stats.answer, rebuild_stats.answer);
    assert_eq!(
        shared_stats.ej_queries_evaluated,
        rebuild_stats.ej_queries_evaluated
    );
    assert!(
        shared_stats.trie_cache.hits > 0,
        "{:?}",
        shared_stats.trie_cache
    );
    assert_eq!(rebuild_stats.trie_cache.hits, 0);
    assert_eq!(rebuild_stats.trie_cache.entries, 0);

    // The cache persists across evaluations: a second evaluation of the same
    // database is served entirely from the warmed cache (no new misses), and
    // its per-evaluation stats report only that evaluation's activity.
    let warm_stats = shared.evaluate_with_stats(&query, &db).unwrap();
    assert_eq!(warm_stats.answer, shared_stats.answer);
    assert_eq!(
        warm_stats.trie_cache.misses, 0,
        "{:?}",
        warm_stats.trie_cache
    );
    assert!(warm_stats.trie_cache.hits > 0);
    assert_eq!(
        shared.trie_cache_stats().misses,
        shared_stats.trie_cache.misses,
        "cumulative misses must not grow on the warm pass"
    );
}

/// A capacity-1 persistent cache must evict (and count evictions) while still
/// answering correctly — eviction only ever costs rebuilds, never answers.
#[test]
fn tiny_persistent_cache_counts_evictions() {
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    let mut db = Database::new();
    db.insert_tuples("R", 2, vec![vec![iv(0.0, 2.0), iv(10.0, 12.0)]]);
    db.insert_tuples("S", 2, vec![vec![iv(11.0, 13.0), iv(20.0, 22.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(1.0, 3.0), iv(30.0, 31.0)]]);
    let tiny = IntersectionJoinEngine::new(
        EngineConfig::new()
            .with_parallelism(1)
            .with_trie_cache_capacity(1),
    );
    let reference = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
    let tiny_stats = tiny.evaluate_with_stats(&query, &db).unwrap();
    let reference_stats = reference.evaluate_with_stats(&query, &db).unwrap();
    assert_eq!(tiny_stats.answer, reference_stats.answer);
    assert!(
        tiny_stats.trie_cache.evictions > 0,
        "a capacity-1 cache under a multi-relation disjunction must evict: {:?}",
        tiny_stats.trie_cache
    );
    assert_eq!(tiny_stats.trie_cache.entries, 1);
    assert_eq!(reference_stats.trie_cache.evictions, 0);
}
