//! Property tests for the shared trie cache and the sharded trie builds
//! (PR 2): on random interval workloads, cached-trie evaluation must be
//! indistinguishable from rebuild-per-disjunct evaluation, at every
//! parallelism and shard-count setting, and must agree with the naive
//! reference evaluator.

use ij_engine::{EngineConfig, IntersectionJoinEngine};
use ij_relation::{Database, Query, Value};
use proptest::prelude::*;

/// A random interval over a small integer domain (ties and overlaps likely).
fn arb_interval() -> impl Strategy<Value = Value> {
    (0i32..14, 0i32..5).prop_map(|(lo, len)| Value::interval(lo as f64, (lo + len) as f64))
}

/// Random rows of interval pairs.
fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Value, Value)>> {
    proptest::collection::vec((arb_interval(), arb_interval()), 1..=max)
}

fn db_of(rows: [(&str, &Vec<(Value, Value)>); 3]) -> Database {
    let mut db = Database::new();
    for (name, rows) in rows {
        db.insert_tuples(name, 2, rows.iter().map(|&(a, b)| vec![a, b]).collect());
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached-trie evaluation ≡ rebuild-per-disjunct evaluation on random
    /// triangle workloads (the E1 cyclic query), across parallelism and
    /// shard-count settings, and both agree with the naive oracle.
    #[test]
    fn cached_evaluation_matches_rebuild_per_disjunct(
        r in arb_rows(6),
        s in arb_rows(6),
        t in arb_rows(6),
    ) {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let db = db_of([("R", &r), ("S", &s), ("T", &t)]);
        let expected = IntersectionJoinEngine::with_defaults()
            .evaluate_naive(&query, &db)
            .unwrap();
        for parallelism in [1usize, 2] {
            for shards in [1usize, 2, 3] {
                for capacity in [0usize, 4096] {
                    let engine = IntersectionJoinEngine::new(
                        EngineConfig::new()
                            .with_parallelism(parallelism)
                            .with_trie_shards(shards)
                            .with_trie_cache_capacity(capacity),
                    );
                    prop_assert_eq!(
                        engine.evaluate(&query, &db).unwrap(),
                        expected,
                        "parallelism {}, shards {}, capacity {}",
                        parallelism, shards, capacity
                    );
                }
            }
        }
    }

    /// The same equivalence on an acyclic (path) query, which exercises the
    /// Yannakakis branch next to the trie-building ones.
    #[test]
    fn cached_evaluation_matches_on_acyclic_queries(
        r in arb_rows(6),
        s in arb_rows(6),
        t in arb_rows(6),
    ) {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([C],[D])").unwrap();
        let db = db_of([("R", &r), ("S", &s), ("T", &t)]);
        let expected = IntersectionJoinEngine::with_defaults()
            .evaluate_naive(&query, &db)
            .unwrap();
        for shards in [1usize, 4] {
            for capacity in [0usize, 4096] {
                let engine = IntersectionJoinEngine::new(
                    EngineConfig::new()
                        .with_trie_shards(shards)
                        .with_trie_cache_capacity(capacity),
                );
                prop_assert_eq!(engine.evaluate(&query, &db).unwrap(), expected);
            }
        }
    }
}

/// Deterministic (non-property) check that the cache is actually exercised:
/// a disjunction with shared atoms must record hits, and the hit-serving
/// evaluation must report the same answer and disjunct counts as the
/// rebuilding one.
#[test]
fn cache_hits_are_recorded_and_answer_preserving() {
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    let mut db = Database::new();
    // Planted unsatisfiable: pairwise overlaps exist but no triple does.
    db.insert_tuples("R", 2, vec![vec![iv(0.0, 2.0), iv(10.0, 12.0)]]);
    db.insert_tuples("S", 2, vec![vec![iv(11.0, 13.0), iv(20.0, 22.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(1.0, 3.0), iv(30.0, 31.0)]]);

    let shared = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
    let rebuild = IntersectionJoinEngine::new(
        EngineConfig::new()
            .with_parallelism(1)
            .with_trie_cache_capacity(0),
    );
    let shared_stats = shared.evaluate_with_stats(&query, &db).unwrap();
    let rebuild_stats = rebuild.evaluate_with_stats(&query, &db).unwrap();
    assert!(!shared_stats.answer);
    assert_eq!(shared_stats.answer, rebuild_stats.answer);
    assert_eq!(
        shared_stats.ej_queries_evaluated,
        rebuild_stats.ej_queries_evaluated
    );
    assert!(
        shared_stats.trie_cache.hits > 0,
        "{:?}",
        shared_stats.trie_cache
    );
    assert_eq!(rebuild_stats.trie_cache.hits, 0);
    assert_eq!(rebuild_stats.trie_cache.entries, 0);
}
