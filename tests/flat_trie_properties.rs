//! Property tests for the flat (CSR leapfrog) trie layout (PR 6).
//!
//! Three layers of equivalence, all on random inputs:
//!
//! * **kernels** — `gallop_seek` / `intersect_sorted_gallop` /
//!   `leapfrog_next` must be indistinguishable from their scalar reference
//!   implementations (and from a brute-force oracle) on arbitrary sorted
//!   distinct runs, including the adversarial shapes where galloping
//!   off-by-ones hide: empty, singleton, disjoint, fully-equal, and lengths
//!   that are not a multiple of the linear-probe span;
//! * **generic join** — Boolean and enumerated answers of the flat layout
//!   must be bit-identical to the hash layout (and to `Auto`) across shard
//!   counts and cache configurations;
//! * **engine** — end-to-end evaluation through the forward reduction must
//!   agree with the naive oracle for every `trie_layout` setting × shard
//!   count × cache capacity.
//!
//! CI runs this file in `--release` as well: optimized galloping is where
//! seek bugs actually surface.

use ij_ejoin::{
    generic_join_boolean_with, generic_join_enumerate_with, BoundAtom, EvalContext, TrieCache,
    TrieLayout,
};
use ij_engine::{EngineConfig, IntersectionJoinEngine};
use ij_relation::kernels::{
    gallop_seek, gallop_seek_scalar, intersect_sorted_gallop, intersect_sorted_scalar,
    leapfrog_next, leapfrog_next_scalar, GALLOP_LINEAR_SPAN,
};
use ij_relation::{Database, Query, Relation, Value, ValueId};
use proptest::prelude::*;

const LAYOUTS: [TrieLayout; 3] = [TrieLayout::Hash, TrieLayout::Flat, TrieLayout::Auto];

/// A sorted, distinct run of ids — the invariant every flat-trie run holds.
/// The raw domain spans several gallop spans so seeks overshoot and settle.
fn arb_run(max_len: usize) -> impl Strategy<Value = Vec<ValueId>> {
    proptest::collection::vec(0u32..(12 * GALLOP_LINEAR_SPAN as u32), 0..=max_len).prop_map(
        |mut raw| {
            raw.sort_unstable();
            raw.dedup();
            raw.into_iter().map(ValueId::from_raw).collect()
        },
    )
}

/// A random interval over a small integer domain (ties and overlaps likely).
fn arb_interval() -> impl Strategy<Value = Value> {
    (0i32..14, 0i32..5).prop_map(|(lo, len)| Value::interval(lo as f64, (lo + len) as f64))
}

/// Random rows of interval pairs.
fn arb_interval_rows(max: usize) -> impl Strategy<Value = Vec<(Value, Value)>> {
    proptest::collection::vec((arb_interval(), arb_interval()), 1..=max)
}

/// Random rows of point pairs over a tiny domain (shared values likely).
fn arb_point_rows(max: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..6, 0u8..6), 1..=max)
}

fn point_rel(name: &str, rows: &[(u8, u8)]) -> Relation {
    Relation::from_tuples(
        name,
        2,
        rows.iter()
            .map(|&(a, b)| vec![Value::point(a as f64), Value::point(b as f64)])
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `gallop_seek` ≡ linear scan for every starting cursor and target.
    #[test]
    fn gallop_seek_matches_the_scalar_reference(
        run in arb_run(5 * GALLOP_LINEAR_SPAN),
        target_raw in 0u32..(14 * GALLOP_LINEAR_SPAN as u32),
    ) {
        let target = ValueId::from_raw(target_raw);
        for start in 0..=run.len() {
            let fast = gallop_seek(&run, start, target);
            let slow = gallop_seek_scalar(&run, start, target);
            prop_assert_eq!(fast, slow, "start {}", start);
            // Postcondition: first element >= target at or after `start`.
            prop_assert!(run[start..fast].iter().all(|&v| v < target));
            if fast < run.len() {
                prop_assert!(run[fast] >= target);
            }
        }
    }

    /// Galloping intersection ≡ two-pointer merge, in both argument orders
    /// (random runs include empty, singleton, disjoint and fully-equal pairs
    /// as degenerate draws, and lengths off the linear-probe span).
    #[test]
    fn intersect_gallop_matches_the_scalar_reference(
        a in arb_run(6 * GALLOP_LINEAR_SPAN),
        b in arb_run(2 * GALLOP_LINEAR_SPAN + 3),
    ) {
        let (mut fast, mut slow, mut swapped) = (Vec::new(), Vec::new(), Vec::new());
        intersect_sorted_gallop(&a, &b, &mut fast);
        intersect_sorted_scalar(&a, &b, &mut slow);
        prop_assert_eq!(&fast, &slow);
        intersect_sorted_gallop(&b, &a, &mut swapped);
        prop_assert_eq!(&fast, &swapped);
        // Oracle: exactly the elements of `a` also present in `b`.
        let oracle: Vec<ValueId> =
            a.iter().copied().filter(|v| b.contains(v)).collect();
        prop_assert_eq!(fast, oracle);
    }

    /// Multi-way leapfrog ≡ scalar reference ≡ brute-force membership
    /// oracle, over 1–4 runs of uneven lengths.
    #[test]
    fn leapfrog_matches_scalar_and_oracle(
        runs in proptest::collection::vec(arb_run(4 * GALLOP_LINEAR_SPAN), 1..=4),
    ) {
        let slices: Vec<&[ValueId]> = runs.iter().map(|r| r.as_slice()).collect();
        let collect = |next: fn(&[&[ValueId]], &mut [usize]) -> Option<ValueId>| {
            let mut cursors = vec![0usize; slices.len()];
            let mut out = Vec::new();
            while let Some(v) = next(&slices, &mut cursors) {
                // Every cursor points at the matched value.
                for (run, &c) in slices.iter().zip(&cursors) {
                    assert_eq!(run[c], v);
                }
                out.push(v);
                for c in cursors.iter_mut() {
                    *c += 1;
                }
            }
            out
        };
        let fast = collect(leapfrog_next);
        let slow = collect(leapfrog_next_scalar);
        prop_assert_eq!(&fast, &slow);
        let oracle: Vec<ValueId> = runs[0]
            .iter()
            .copied()
            .filter(|v| runs.iter().all(|r| r.contains(v)))
            .collect();
        prop_assert_eq!(fast, oracle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generic-join equivalence on random triangle instances: Boolean and
    /// enumerated answers are bit-identical for every layout × shard count ×
    /// cache setting.  The explicit `Flat` layout forces flat tries even on
    /// these tiny relations (`Auto` would keep them hash), so the leapfrog
    /// path itself is exercised, not just the resolution heuristic.
    #[test]
    fn flat_and_hash_generic_joins_are_bit_identical(
        r_rows in arb_point_rows(10),
        s_rows in arb_point_rows(10),
        t_rows in arb_point_rows(10),
    ) {
        let r = point_rel("R", &r_rows);
        let s = point_rel("S", &s_rows);
        let t = point_rel("T", &t_rows);
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t, vec![0, 2]),
        ];
        let expected = generic_join_boolean_with(&atoms, None, EvalContext::default()).unwrap();
        let expected_out =
            generic_join_enumerate_with(&atoms, &[0, 1, 2], "out", EvalContext::default()).unwrap();
        let cache = TrieCache::new();
        for layout in LAYOUTS {
            for shards in [1usize, 2, 3] {
                for cache_ref in [None, Some(&cache)] {
                    let eval = EvalContext {
                        cache: cache_ref,
                        shards,
                        layout,
                        ..EvalContext::default()
                    };
                    prop_assert_eq!(
                        generic_join_boolean_with(&atoms, None, eval).unwrap(),
                        expected,
                        "boolean: layout {:?}, shards {}, cached {}",
                        layout, shards, cache_ref.is_some()
                    );
                    let out = generic_join_enumerate_with(&atoms, &[0, 1, 2], "out", eval).unwrap();
                    prop_assert_eq!(
                        out.tuples(),
                        expected_out.tuples(),
                        "enumerate: layout {:?}, shards {}, cached {}",
                        layout, shards, cache_ref.is_some()
                    );
                }
            }
        }
    }

    /// End-to-end equivalence with the naive oracle on random interval
    /// triangle workloads, for every `trie_layout` × shard count × cache
    /// capacity — the engine-level statement that the layout knob never
    /// changes answers.
    #[test]
    fn engine_answers_identical_across_trie_layouts(
        r in arb_interval_rows(6),
        s in arb_interval_rows(6),
        t in arb_interval_rows(6),
    ) {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        for (name, rows) in [("R", &r), ("S", &s), ("T", &t)] {
            db.insert_tuples(name, 2, rows.iter().map(|&(a, b)| vec![a, b]).collect());
        }
        let expected = IntersectionJoinEngine::with_defaults()
            .evaluate_naive(&query, &db)
            .unwrap();
        for layout in LAYOUTS {
            for shards in [1usize, 2] {
                for capacity in [0usize, 4096] {
                    let engine = IntersectionJoinEngine::new(
                        EngineConfig::new()
                            .with_parallelism(1)
                            .with_trie_shards(shards)
                            .with_trie_cache_capacity(capacity)
                            .with_trie_layout(layout),
                    );
                    prop_assert_eq!(
                        engine.evaluate(&query, &db).unwrap(),
                        expected,
                        "layout {:?}, shards {}, capacity {}",
                        layout, shards, capacity
                    );
                }
            }
        }
    }
}

/// Deterministic adversarial shapes for the galloping kernels — the named
/// cases from the checklist, pinned so a regression is reported by name
/// rather than by a shrunk random draw.
#[test]
fn adversarial_runs_intersect_identically() {
    let ids =
        |raw: &[u32]| -> Vec<ValueId> { raw.iter().copied().map(ValueId::from_raw).collect() };
    let span = GALLOP_LINEAR_SPAN as u32;
    let cases: Vec<(Vec<ValueId>, Vec<ValueId>)> = vec![
        (ids(&[]), ids(&[])),                                   // both empty
        (ids(&[]), ids(&[1, 2, 3])),                            // one empty
        (ids(&[5]), ids(&[5])),                                 // equal singletons
        (ids(&[5]), ids(&[6])),                                 // disjoint singletons
        ((0..40).map(ValueId::from_raw).collect(), ids(&[39])), // long vs singleton
        (
            (0..33).map(|i| ValueId::from_raw(2 * i)).collect(), // evens…
            (0..33).map(|i| ValueId::from_raw(2 * i + 1)).collect(), // …vs odds: disjoint
        ),
        (
            (0..(3 * span + 1)).map(ValueId::from_raw).collect(), // fully equal,
            (0..(3 * span + 1)).map(ValueId::from_raw).collect(), // off-span length
        ),
        (
            (0..10 * span).step_by(7).map(ValueId::from_raw).collect(), // sparse strides
            (0..10 * span).step_by(3).map(ValueId::from_raw).collect(),
        ),
    ];
    for (a, b) in &cases {
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        intersect_sorted_gallop(a, b, &mut fast);
        intersect_sorted_scalar(a, b, &mut slow);
        assert_eq!(fast, slow, "a = {a:?}, b = {b:?}");
        intersect_sorted_gallop(b, a, &mut fast);
        assert_eq!(fast, slow, "swapped: a = {a:?}, b = {b:?}");
        // And through the multi-way kernel.
        let runs: Vec<&[ValueId]> = vec![a, b];
        let mut cursors = vec![0usize; 2];
        let mut multi = Vec::new();
        while let Some(v) = leapfrog_next(&runs, &mut cursors) {
            multi.push(v);
            for c in cursors.iter_mut() {
                *c += 1;
            }
        }
        assert_eq!(multi, slow, "leapfrog: a = {a:?}, b = {b:?}");
    }
}
