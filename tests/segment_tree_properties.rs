//! Property-based tests for the segment-tree substrate (Section 3,
//! Property 3.2 and the intersection-predicate rewritings of Section 4.1).

use ij_segtree::{BitString, Interval, SegmentTree};
use proptest::prelude::*;

/// A random set of closed intervals with small integer-ish endpoints (ties
/// and containments are likely, which is what we want to stress).
fn arb_intervals(max_len: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((0i32..60, 0i32..20), 1..=max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(lo, len)| Interval::new(lo as f64, (lo + len) as f64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Property 3.2(2)/(3): canonical partitions are antichains of bounded size.
    #[test]
    fn canonical_partitions_are_small_antichains(intervals in arb_intervals(24)) {
        let tree = SegmentTree::build(&intervals);
        let height = tree.height() as usize;
        for &iv in &intervals {
            let cp = tree.canonical_partition(iv);
            prop_assert!(!cp.is_empty());
            prop_assert!(cp.len() <= 2 * height + 2);
            for (i, a) in cp.iter().enumerate() {
                for (j, b) in cp.iter().enumerate() {
                    if i != j {
                        prop_assert!(!a.is_prefix_of(*b));
                    }
                }
            }
        }
    }

    /// Lemma 4.1 specialised to two intervals: x ∩ y ≠ ∅ iff some node of
    /// CP(y) is an ancestor of leaf(x) or some node of CP(x) is an ancestor
    /// of leaf(y).
    #[test]
    fn pairwise_intersection_predicate(intervals in arb_intervals(12)) {
        let tree = SegmentTree::build(&intervals);
        for &x in &intervals {
            for &y in &intervals {
                let leaf_x = tree.leaf_of_interval(x);
                let leaf_y = tree.leaf_of_interval(y);
                let rewritten = tree.canonical_partition(y).iter().any(|v| v.is_prefix_of(leaf_x))
                    || tree.canonical_partition(x).iter().any(|v| v.is_prefix_of(leaf_y));
                prop_assert_eq!(rewritten, x.intersects(y));
            }
        }
    }

    /// Lemma 4.4 for three intervals: the intersection is non-empty iff there
    /// is a permutation (σ1, σ2, σ3) and bitstrings (b1, b2, b3) such that
    /// b1 ∈ CP(σ1), b1◦b2 ∈ CP(σ2) and b1◦b2◦b3 = leaf(σ3).
    #[test]
    fn three_way_intersection_predicate(intervals in arb_intervals(6)) {
        let tree = SegmentTree::build(&intervals);
        let n = intervals.len();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (x, y, z) = (intervals[i], intervals[j], intervals[k]);
                    let truth = Interval::intersect_all([x, y, z]).is_some();
                    // Evaluate the rewriting: try all 6 permutations.
                    let perms =
                        [[x, y, z], [x, z, y], [y, x, z], [y, z, x], [z, x, y], [z, y, x]];
                    let mut rewritten = false;
                    'perm: for p in perms {
                        let leaf = tree.leaf_of_interval(p[2]);
                        let cp0 = tree.canonical_partition(p[0]);
                        let cp1 = tree.canonical_partition(p[1]);
                        // u1 must be an ancestor of u2, both ancestors of leaf.
                        for u1 in cp0.iter().filter(|u| u.is_prefix_of(leaf)) {
                            for u2 in cp1.iter().filter(|u| u.is_prefix_of(leaf)) {
                                if u1.is_prefix_of(*u2) {
                                    rewritten = true;
                                    break 'perm;
                                }
                            }
                        }
                    }
                    prop_assert_eq!(rewritten, truth, "x={:?} y={:?} z={:?}", x, y, z);
                }
            }
        }
    }

    /// Stabbing queries report exactly the stored intervals containing the
    /// probe point.
    #[test]
    fn stabbing_queries_are_exact(intervals in arb_intervals(20), probes in proptest::collection::vec(0i32..80, 1..10)) {
        let tree = SegmentTree::build_with_storage(&intervals);
        for p in probes {
            let p = p as f64;
            let expected: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(tree.stab(p), expected);
        }
    }

    /// Compositions of leaf bitstrings concatenate back to the original
    /// (Claim C.1 bookkeeping used by the reduction).
    #[test]
    fn compositions_concatenate_back(intervals in arb_intervals(10), parts in 1usize..4) {
        let tree = SegmentTree::build(&intervals);
        for &iv in &intervals {
            let leaf = tree.leaf_of_interval(iv);
            let mut count = 0usize;
            for composition in leaf.compositions(parts) {
                prop_assert_eq!(BitString::concat_all(composition.iter().copied()), leaf);
                prop_assert_eq!(composition.len(), parts);
                count += 1;
            }
            prop_assert_eq!(count as u64, leaf.composition_count(parts));
        }
    }
}
