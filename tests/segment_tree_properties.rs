//! Property-based tests for the segment-tree substrate (Section 3,
//! Property 3.2 and the intersection-predicate rewritings of Section 4.1).

use ij_segtree::{BitString, FlatSegmentTree, Interval, IntervalTree, SegmentTree};
use proptest::prelude::*;
use proptest::TestCaseError;

/// A random set of closed intervals with small integer-ish endpoints (ties
/// and containments are likely, which is what we want to stress).
fn arb_intervals(max_len: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((0i32..60, 0i32..20), 1..=max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(lo, len)| Interval::new(lo as f64, (lo + len) as f64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Property 3.2(2)/(3): canonical partitions are antichains of bounded size.
    #[test]
    fn canonical_partitions_are_small_antichains(intervals in arb_intervals(24)) {
        let tree = SegmentTree::build(&intervals);
        let height = tree.height() as usize;
        for &iv in &intervals {
            let cp = tree.canonical_partition(iv);
            prop_assert!(!cp.is_empty());
            prop_assert!(cp.len() <= 2 * height + 2);
            for (i, a) in cp.iter().enumerate() {
                for (j, b) in cp.iter().enumerate() {
                    if i != j {
                        prop_assert!(!a.is_prefix_of(*b));
                    }
                }
            }
        }
    }

    /// Lemma 4.1 specialised to two intervals: x ∩ y ≠ ∅ iff some node of
    /// CP(y) is an ancestor of leaf(x) or some node of CP(x) is an ancestor
    /// of leaf(y).
    #[test]
    fn pairwise_intersection_predicate(intervals in arb_intervals(12)) {
        let tree = SegmentTree::build(&intervals);
        for &x in &intervals {
            for &y in &intervals {
                let leaf_x = tree.leaf_of_interval(x);
                let leaf_y = tree.leaf_of_interval(y);
                let rewritten = tree.canonical_partition(y).iter().any(|v| v.is_prefix_of(leaf_x))
                    || tree.canonical_partition(x).iter().any(|v| v.is_prefix_of(leaf_y));
                prop_assert_eq!(rewritten, x.intersects(y));
            }
        }
    }

    /// Lemma 4.4 for three intervals: the intersection is non-empty iff there
    /// is a permutation (σ1, σ2, σ3) and bitstrings (b1, b2, b3) such that
    /// b1 ∈ CP(σ1), b1◦b2 ∈ CP(σ2) and b1◦b2◦b3 = leaf(σ3).
    #[test]
    fn three_way_intersection_predicate(intervals in arb_intervals(6)) {
        let tree = SegmentTree::build(&intervals);
        let n = intervals.len();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (x, y, z) = (intervals[i], intervals[j], intervals[k]);
                    let truth = Interval::intersect_all([x, y, z]).is_some();
                    // Evaluate the rewriting: try all 6 permutations.
                    let perms =
                        [[x, y, z], [x, z, y], [y, x, z], [y, z, x], [z, x, y], [z, y, x]];
                    let mut rewritten = false;
                    'perm: for p in perms {
                        let leaf = tree.leaf_of_interval(p[2]);
                        let cp0 = tree.canonical_partition(p[0]);
                        let cp1 = tree.canonical_partition(p[1]);
                        // u1 must be an ancestor of u2, both ancestors of leaf.
                        for u1 in cp0.iter().filter(|u| u.is_prefix_of(leaf)) {
                            for u2 in cp1.iter().filter(|u| u.is_prefix_of(leaf)) {
                                if u1.is_prefix_of(*u2) {
                                    rewritten = true;
                                    break 'perm;
                                }
                            }
                        }
                    }
                    prop_assert_eq!(rewritten, truth, "x={:?} y={:?} z={:?}", x, y, z);
                }
            }
        }
    }

    /// Stabbing queries report exactly the stored intervals containing the
    /// probe point.
    #[test]
    fn stabbing_queries_are_exact(intervals in arb_intervals(20), probes in proptest::collection::vec(0i32..80, 1..10)) {
        let tree = SegmentTree::build_with_storage(&intervals);
        for p in probes {
            let p = p as f64;
            let expected: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains_point(p))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(tree.stab(p), expected);
        }
    }

    /// Compositions of leaf bitstrings concatenate back to the original
    /// (Claim C.1 bookkeeping used by the reduction).
    #[test]
    fn compositions_concatenate_back(intervals in arb_intervals(10), parts in 1usize..4) {
        let tree = SegmentTree::build(&intervals);
        for &iv in &intervals {
            let leaf = tree.leaf_of_interval(iv);
            let mut count = 0usize;
            for composition in leaf.compositions(parts) {
                prop_assert_eq!(BitString::concat_all(composition.iter().copied()), leaf);
                prop_assert_eq!(composition.len(), parts);
                count += 1;
            }
            prop_assert_eq!(count as u64, leaf.composition_count(parts));
        }
    }
}

/// Degenerate point intervals (`lo == hi`): stabbing and overlap reduce to
/// equality joins (Section 1), a corner the centered-tree splitting logic and
/// the flat layout's odd/even coordinate convention must both survive.
fn arb_point_intervals(max_len: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec(0i32..20, 1..=max_len).prop_map(|points| {
        points
            .into_iter()
            .map(|p| Interval::point(p as f64))
            .collect()
    })
}

/// Intervals drawn from a tiny endpoint domain so duplicate endpoints (and
/// entire duplicate intervals) are the common case rather than the exception.
fn arb_duplicate_heavy_intervals(max_len: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((0i32..6, 0i32..4), 1..=max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(lo, len)| Interval::new(lo as f64, (lo + len) as f64))
            .collect()
    })
}

/// A fully-nested chain I_0 ⊋ I_1 ⊋ ... (Russian-doll shape): every interval
/// shares stabbing structure with every outer one, the worst case for
/// centered trees (everything lands on the root's centre list).
fn arb_nested_intervals(max_len: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((1i32..4, 1i32..4), 1..=max_len).prop_map(|steps| {
        let total: i32 = steps.iter().map(|(l, r)| l + r).sum();
        let mut lo = 0i32;
        let mut hi = 2 * total + 1;
        let mut out = Vec::with_capacity(steps.len());
        for (dl, dr) in steps {
            out.push(Interval::new(lo as f64, hi as f64));
            lo += dl;
            hi -= dr;
        }
        out
    })
}

/// Brute-force oracle for overlap queries.
fn brute_overlapping(intervals: &[Interval], query: Interval) -> Vec<usize> {
    intervals
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.intersects(query))
        .map(|(i, _)| i)
        .collect()
}

/// Brute-force oracle for stabbing queries.
fn brute_stab(intervals: &[Interval], p: f64) -> Vec<usize> {
    intervals
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.contains_point(p))
        .map(|(i, _)| i)
        .collect()
}

/// Checks both index structures against the brute-force oracle on a shared
/// probe set derived from the data itself (endpoints, midpoints, gaps).
fn assert_indexes_match_brute_force(intervals: &[Interval]) -> Result<(), TestCaseError> {
    let centered = IntervalTree::build(intervals);
    let flat = FlatSegmentTree::build(intervals);
    prop_assert_eq!(centered.len(), intervals.len());
    prop_assert_eq!(flat.len(), intervals.len());

    let mut probes: Vec<f64> = Vec::new();
    for iv in intervals {
        probes.extend([iv.lo(), iv.hi(), (iv.lo() + iv.hi()) / 2.0]);
        probes.extend([iv.lo() - 0.5, iv.hi() + 0.5]);
    }
    for &p in &probes {
        let expected = brute_stab(intervals, p);
        prop_assert_eq!(centered.stab(p), expected.clone(), "centered stab({})", p);
        prop_assert_eq!(flat.stab(p), expected, "flat stab({})", p);
    }

    let mut queries: Vec<Interval> = intervals.to_vec();
    for (i, a) in probes.iter().enumerate() {
        let b = probes[(i + 3) % probes.len()];
        queries.push(Interval::new(a.min(b), a.max(b)));
    }
    for &q in &queries {
        let expected = brute_overlapping(intervals, q);
        prop_assert_eq!(
            centered.overlapping(q),
            expected.clone(),
            "centered overlapping({:?})",
            q
        );
        prop_assert_eq!(
            flat.overlapping(q),
            expected.clone(),
            "flat overlapping({:?})",
            q
        );
        prop_assert_eq!(centered.intersects_any(q), !expected.is_empty());
        prop_assert_eq!(flat.intersects_any(q), !expected.is_empty());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Point intervals: both index structures agree with brute force when
    /// every stored interval is degenerate.
    #[test]
    fn interval_indexes_handle_point_intervals(intervals in arb_point_intervals(20)) {
        assert_indexes_match_brute_force(&intervals)?;
    }

    /// Duplicate endpoints (and duplicate whole intervals) don't confuse the
    /// endpoint interning or the centre-list scans.
    #[test]
    fn interval_indexes_handle_duplicate_endpoints(intervals in arb_duplicate_heavy_intervals(20)) {
        assert_indexes_match_brute_force(&intervals)?;
    }

    /// Fully-nested chains: the centered tree degenerates to one fat root
    /// node and the flat tree's canonical slabs stack; both must stay exact.
    #[test]
    fn interval_indexes_handle_fully_nested_chains(intervals in arb_nested_intervals(16)) {
        assert_indexes_match_brute_force(&intervals)?;
    }

    /// General mixed workloads (same distribution the segment-tree properties
    /// above use) against brute force.
    #[test]
    fn interval_indexes_match_brute_force(intervals in arb_intervals(24)) {
        assert_indexes_match_brute_force(&intervals)?;
    }
}
