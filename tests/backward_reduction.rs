//! E9 — the backward reduction (Section 5, Theorem 5.2, Example 5.1).
//!
//! For a self-join-free IJ query `Q` and any EJ query `Q̃` produced by the
//! forward reduction, an arbitrary database `D̃` of (fixed-length) bitstrings
//! over the schema of `Q̃` maps to an interval database `D` of the same size
//! such that `Q(D)` holds iff `Q̃(D̃)` holds.

use ij_ejoin::{evaluate_ej_boolean, BoundAtom, EjStrategy};
use ij_engine::naive_boolean;
use ij_reduction::{backward_reduction, forward_reduction, ForwardReduction};
use ij_relation::{Database, Query, Relation, Value};
use ij_segtree::BitString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Builds the triangle forward reduction (the data content is irrelevant —
/// only the reduced query structures are needed).
fn triangle_reduction() -> (Query, ForwardReduction) {
    let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
    let mut db = Database::new();
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
    db.insert_tuples("S", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
    let fr = forward_reduction(&q, &db).unwrap();
    (q, fr)
}

/// A random EJ database over the schema of a reduced query, with every value
/// a bitstring of exactly `bits` bits (the fixed-length-domain assumption of
/// Theorem 5.2's proof).
fn random_ej_database(
    reduced: &ij_reduction::ReducedQuery,
    tuples: usize,
    bits: u8,
    rng: &mut StdRng,
) -> Database {
    let mut db = Database::new();
    for atom in &reduced.atoms {
        let mut rel = Relation::new(atom.relation.clone(), atom.vars.len());
        for _ in 0..tuples {
            let row: Vec<Value> = (0..atom.vars.len())
                .map(|_| {
                    let raw: u64 = rng.gen_range(0..(1u64 << bits));
                    Value::Bits(BitString::from_bits(raw, bits))
                })
                .collect();
            rel.push(row);
        }
        db.insert(rel);
    }
    db
}

/// Evaluates a reduced EJ query over an EJ database with the equality-join
/// engine.
fn evaluate_reduced(reduced: &ij_reduction::ReducedQuery, ej_db: &Database) -> bool {
    let mut var_ids: BTreeMap<&str, usize> = BTreeMap::new();
    for atom in &reduced.atoms {
        for v in &atom.vars {
            let next = var_ids.len();
            var_ids.entry(v.as_str()).or_insert(next);
        }
    }
    let atoms: Vec<BoundAtom<'_>> = reduced
        .atoms
        .iter()
        .map(|a| {
            let rel = ej_db.relation(&a.relation).unwrap();
            BoundAtom::new(rel, a.vars.iter().map(|v| var_ids[v.as_str()]).collect())
        })
        .collect();
    evaluate_ej_boolean(&atoms, EjStrategy::Auto)
}

#[test]
fn backward_reduction_round_trip_on_random_databases() {
    let (q, fr) = triangle_reduction();
    let mut rng = StdRng::seed_from_u64(2022);
    let mut agree_true = 0usize;
    let mut agree_false = 0usize;
    // Exercise every reduced query of the disjunction.
    for reduced in &fr.queries {
        for _ in 0..6 {
            // Small domains produce both outcomes.
            let ej_db = random_ej_database(reduced, 4, 2, &mut rng);
            let ej_answer = evaluate_reduced(reduced, &ej_db);
            let ij_db = backward_reduction(&q, reduced, &ej_db).unwrap();
            // Size preservation: |D| = |D̃|.
            assert_eq!(ij_db.total_tuples(), ej_db.total_tuples());
            let ij_answer = naive_boolean(&q, &ij_db).unwrap();
            assert_eq!(ij_answer, ej_answer, "reduced query {:?}", reduced.atoms);
            if ej_answer {
                agree_true += 1;
            } else {
                agree_false += 1;
            }
        }
    }
    assert!(agree_true > 0, "no positive instance exercised");
    assert!(agree_false > 0, "no negative instance exercised");
}

#[test]
fn backward_reduction_works_for_longer_bitstrings() {
    let (q, fr) = triangle_reduction();
    let mut rng = StdRng::seed_from_u64(7);
    let reduced = &fr.queries[3];
    for _ in 0..10 {
        let ej_db = random_ej_database(reduced, 6, 5, &mut rng);
        let ej_answer = evaluate_reduced(reduced, &ej_db);
        let ij_db = backward_reduction(&q, reduced, &ej_db).unwrap();
        assert_eq!(naive_boolean(&q, &ij_db).unwrap(), ej_answer);
    }
}

#[test]
fn backward_reduction_of_star_queries() {
    // A non-cyclic original query: the 2-star R([X],[Y1]) ∧ S([X],[Y2]).
    let q = Query::parse("R([X],[Y1]) & S([X],[Y2])").unwrap();
    let mut db = Database::new();
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
    db.insert_tuples("S", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
    let fr = forward_reduction(&q, &db).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for reduced in &fr.queries {
        for _ in 0..5 {
            let ej_db = random_ej_database(reduced, 5, 3, &mut rng);
            let ej_answer = evaluate_reduced(reduced, &ej_db);
            let ij_db = backward_reduction(&q, reduced, &ej_db).unwrap();
            assert_eq!(naive_boolean(&q, &ij_db).unwrap(), ej_answer);
        }
    }
}

#[test]
fn forward_then_backward_preserves_hardness_witnesses() {
    // Example 5.1 in miniature: craft an EJ database that satisfies Q̃3 and
    // check the mapped interval database satisfies Q△.
    let (q, fr) = triangle_reduction();
    let reduced = &fr.queries[0];
    // One tuple per relation, all bitstrings identical → every equality join
    // trivially succeeds.
    let mut ej_db = Database::new();
    for atom in &reduced.atoms {
        let mut rel = Relation::new(atom.relation.clone(), atom.vars.len());
        rel.push(vec![
            Value::Bits(BitString::from_bits(0b1, 1));
            atom.vars.len()
        ]);
        ej_db.insert(rel);
    }
    assert!(evaluate_reduced(reduced, &ej_db));
    let ij_db = backward_reduction(&q, reduced, &ej_db).unwrap();
    assert!(naive_boolean(&q, &ij_db).unwrap());
}
