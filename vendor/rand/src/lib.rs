//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! tiny deterministic subset of the `rand 0.8` API surface used by the
//! workloads, tests and benches: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over the primitive ranges the repository needs.
//!
//! The generator is a xoshiro256** seeded through SplitMix64 — deterministic
//! given the seed, with distinct streams for distinct seeds.  It is **not**
//! cryptographically secure and makes no attempt to match upstream `rand`'s
//! value streams; everything in this repository treats the RNG as an opaque
//! deterministic source.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range; implemented for the primitive range types the
/// workspace uses.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let diff = (hi - lo) as u64;
                if diff == u64::MAX {
                    // Full-width inclusive range of a 64-bit type.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (diff + 1)) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against landing exactly on the (excluded) upper bound through
        // floating-point rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3i32..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&g));
            let h = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&h));
        }
    }
}
