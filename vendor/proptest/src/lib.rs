//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` attribute,
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range strategies over
//! primitive integers, tuple strategies, [`collection::vec`] and
//! [`collection::btree_set`], and the `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name), and failing cases are reported
//! but **not shrunk**.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A deterministic RNG derived from an arbitrary name (the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.gen_range(0u64..=u64::MAX)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi - self.lo) as u64 + 1;
        self.lo + (rng.next_u64() % span) as usize
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element` with a target size drawn from
    /// `size`.  If the element domain is too small to reach the target size,
    /// the set is returned as large as could be built (upstream proptest
    /// rejects such cases instead).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 20 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The error type carried by `prop_assert!` failures.
pub type TestCaseError = String;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    /// Alias for the crate root, so `prop::collection::vec(...)` works.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a `proptest!` body (returns an `Err` from the
/// enclosing case instead of panicking, so the harness can report the case
/// index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({}) at {}:{}",
                l,
                r,
                format!($($fmt)*),
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Declares property tests.  Each test function's arguments are drawn from
/// the given strategies; the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(file!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = result {
                    panic!("proptest case {case} failed: {message}");
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec((0u32..10, 5u32..8), 1..=4), n in 1usize..4) {
            prop_assert!((1..=4).contains(&xs.len()));
            for (a, b) in &xs {
                prop_assert!(*a < 10);
                prop_assert!((5..8).contains(b));
            }
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn maps_and_flat_maps(v in (2usize..=5).prop_flat_map(|n| prop::collection::vec(0..n, 1..=n)).prop_map(|v| v.len())) {
            prop_assert!(v >= 1);
        }

        #[test]
        fn btree_sets_are_bounded(s in prop::collection::btree_set(0usize..6, 1..=3)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() <= 3);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s: Vec<u32> = (0..8).map(|_| (0u32..100).generate(&mut a)).collect();
        let t: Vec<u32> = (0..8).map(|_| (0u32..100).generate(&mut b)).collect();
        assert_eq!(s, t);
    }
}
