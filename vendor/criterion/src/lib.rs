//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches (`benchmark_group`, `sample_size`, `measurement_time`,
//! `throughput`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`) with a plain-text report: each
//! benchmark prints its median / mean iteration time and, when a throughput
//! was declared, the element rate.
//!
//! Statistical machinery (outlier analysis, HTML reports, regression
//! detection) is intentionally absent.  When the binary is invoked with
//! `--test` (as `cargo test` does for `harness = false` bench targets) every
//! benchmark runs a single iteration as a smoke test.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"<name>/<parameter>"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput declaration for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    quick: bool,
}

impl Bencher<'_> {
    /// Times `routine`, collecting samples until the sample target or the
    /// measurement-time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            std_black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up: one untimed run.
        std_black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            quick: self.criterion.quick,
        };
        f(&mut bencher);
        self.report(&id.id, &samples);
        self
    }

    /// Runs a benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if self.criterion.quick {
            println!("{}/{}: ok (smoke test)", self.name, id);
            return;
        }
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, id);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let mut line = format!(
            "{}/{}: median {:>12?}  mean {:>12?}  ({} samples)",
            self.name,
            id,
            median,
            mean,
            sorted.len()
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  {:.0} {unit}/s", count as f64 / secs));
            }
        }
        println!("{line}");
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Conversion into a [`BenchmarkId`]; implemented for ids and plain strings.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark manager.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs `harness = false` bench targets with `--test`;
        // run a single iteration per benchmark in that mode.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.quick {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (outside any group).
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { quick: true };
        let mut ran = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(5)
                .measurement_time(Duration::from_millis(10));
            group.throughput(Throughput::Elements(100));
            group.bench_with_input(BenchmarkId::new("case", 1), &1usize, |b, &n| {
                b.iter(|| {
                    ran += n;
                    ran
                })
            });
            group.finish();
        }
        assert!(ran >= 1);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("a", 7).id, "a/7");
        assert_eq!(BenchmarkId::from_parameter(9).id, "9");
    }
}
